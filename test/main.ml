let () =
  Logs.set_level (Some Logs.Error);
  Alcotest.run "mini-nova"
    [ Test_engine.suite;
      Test_mem.suite;
      Test_cache.suite;
      Test_mmu.suite;
      Test_devices.suite;
      Test_workloads.suite;
      Test_pl.suite;
      Test_core.suite;
      Test_kernel.suite;
      Test_ucos.suite;
      Test_hwapi.suite;
      Test_harness.suite;
      Test_models.suite;
      Test_platform.suite;
      Test_hwtm.suite;
      Test_faults.suite;
      Test_edge.suite;
      Test_fastpath.suite;
      Test_obs.suite;
      Test_slo.suite;
      Test_check.suite;
      Test_ring.suite;
      Test_ctrlpath.suite;
      Test_smp.suite ]

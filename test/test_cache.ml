(* Tests for the cache, TLB and hierarchy models. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let small_cfg =
  { Cache.name = "test"; size_bytes = 1024; ways = 2; line_size = 32 }
(* 1 KB, 2-way, 32 B lines -> 16 sets. *)

let test_cache_geometry () =
  let c = Cache.create small_cfg in
  check ci "lines" 32 (Cache.lines c);
  Alcotest.check_raises "bad geometry"
    (Invalid_argument "Cache.create: capacity not divisible by ways*line")
    (fun () -> ignore (Cache.create { small_cfg with Cache.size_bytes = 1000 }))

let test_cache_hit_miss () =
  let c = Cache.create small_cfg in
  check cb "cold miss" true (Cache.access c 0x1000 ~write:false = `Miss);
  check cb "warm hit" true (Cache.access c 0x1000 ~write:false = `Hit);
  check cb "same line hit" true (Cache.access c 0x101F ~write:false = `Hit);
  check cb "next line miss" true (Cache.access c 0x1020 ~write:false = `Miss);
  check ci "stats hits" 2 (Cache.hits c);
  check ci "stats misses" 2 (Cache.misses c)

let test_cache_lru () =
  let c = Cache.create small_cfg in
  (* Three lines mapping to the same set (stride = sets * line = 512). *)
  ignore (Cache.access c 0x0000 ~write:false);
  ignore (Cache.access c 0x0200 ~write:false);
  ignore (Cache.access c 0x0000 ~write:false); (* refresh first *)
  ignore (Cache.access c 0x0400 ~write:false); (* evicts 0x0200 (LRU) *)
  check cb "victim evicted" false (Cache.probe c 0x0200);
  check cb "recently used kept" true (Cache.probe c 0x0000);
  check cb "newcomer resident" true (Cache.probe c 0x0400)

let test_cache_dirty () =
  let c = Cache.create small_cfg in
  ignore (Cache.access c 0x100 ~write:true);
  ignore (Cache.access c 0x200 ~write:false);
  check cb "dirty detected" true (Cache.dirty_in_range c 0x100 4);
  check cb "clean range not dirty" false (Cache.dirty_in_range c 0x200 4);
  check ci "clean writes back one line" 1 (Cache.clean_range c 0x0 0x1000);
  check cb "clean clears dirtiness" false (Cache.dirty_in_range c 0x100 4);
  check cb "line stays resident after clean" true (Cache.probe c 0x100)

let test_cache_invalidate () =
  let c = Cache.create small_cfg in
  ignore (Cache.access c 0x100 ~write:true);
  ignore (Cache.access c 0x300 ~write:false);
  check ci "invalidate range drops one" 1 (Cache.invalidate_range c 0x100 32);
  check cb "gone" false (Cache.probe c 0x100);
  check cb "other kept" true (Cache.probe c 0x300);
  check ci "invalidate all drops rest" 1 (Cache.invalidate_all c)

(* The O(1) generation-stamped full-cache operations must be
   statistically indistinguishable from the eager walks they replaced:
   same returned counts, same later hit/miss behaviour, no zombie
   dirtiness. Lines per set stay <= ways so nothing self-evicts. *)
let test_cache_gen_stamped_full_ops () =
  let c = Cache.create small_cfg in
  ignore (Cache.access c 0x000 ~write:true);
  ignore (Cache.access c 0x020 ~write:false);
  ignore (Cache.access c 0x200 ~write:true);
  check ci "valid lines tracked" 3 (Cache.valid_lines c);
  check ci "dirty lines tracked" 2 (Cache.dirty_lines c);
  let e0 = Cache.epoch c in
  check ci "clean_all writes back every dirty line" 2 (Cache.clean_all c);
  check cb "clean_all bumps the epoch" true (Cache.epoch c > e0);
  check ci "second clean_all finds nothing" 0 (Cache.clean_all c);
  check cb "lines stay resident after clean_all" true (Cache.probe c 0x000);
  check ci "still all resident" 3 (Cache.valid_lines c);
  ignore (Cache.access c 0x020 ~write:true);
  check ci "invalidate_all returns the resident count" 3
    (Cache.invalidate_all c);
  check cb "probe misses after invalidate_all" false (Cache.probe c 0x000);
  check cb "other set dropped too" false (Cache.probe c 0x200);
  check ci "nothing resident" 0 (Cache.valid_lines c);
  check ci "nothing dirty" 0 (Cache.dirty_lines c);
  check ci "no zombie dirt reachable by ranges" 0 (Cache.clean_range c 0 0x1000);
  check ci "second invalidate_all drops nothing" 0 (Cache.invalidate_all c);
  (* The cache is fully functional after the generation bumps. *)
  let h0 = Cache.hits c and m0 = Cache.misses c in
  check cb "refill misses" true (Cache.access c 0x000 ~write:true = `Miss);
  check cb "then hits" true (Cache.access c 0x000 ~write:false = `Hit);
  check ci "hit counted" (h0 + 1) (Cache.hits c);
  check ci "miss counted" (m0 + 1) (Cache.misses c);
  check ci "dirty again" 1 (Cache.dirty_lines c);
  check ci "clean_all after reuse" 1 (Cache.clean_all c)

let test_cache_large_range_scan () =
  let c = Cache.create small_cfg in
  ignore (Cache.access c 0x100 ~write:true);
  (* A range far larger than the cache uses the scan path. *)
  check cb "dirty found by scan" true (Cache.dirty_in_range c 0 (1 lsl 24))

let prop_probe_after_access =
  QCheck2.Test.make ~name:"accessed line is resident" ~count:300
    QCheck2.Gen.(int_range 0 0xFFFFF)
    (fun a ->
       let c = Cache.create small_cfg in
       ignore (Cache.access c a ~write:false);
       Cache.probe c a)

(* --- TLB --- *)

let entry ?(global = false) ppage = { Tlb.ppage; word = 0; global }

let test_tlb_hit_miss () =
  let t = Tlb.create Tlb.cortex_a9 in
  check cb "cold miss" true (Tlb.lookup t ~asid:1 ~vpage:5 = None);
  Tlb.insert t ~asid:1 ~vpage:5 (entry 42);
  (match Tlb.lookup t ~asid:1 ~vpage:5 with
   | Some e -> check ci "translation" 42 e.Tlb.ppage
   | None -> Alcotest.fail "expected hit");
  check ci "one hit" 1 (Tlb.hits t);
  check ci "one miss" 1 (Tlb.misses t)

let test_tlb_asid_isolation () =
  let t = Tlb.create Tlb.cortex_a9 in
  Tlb.insert t ~asid:1 ~vpage:5 (entry 42);
  check cb "other ASID misses" true (Tlb.lookup t ~asid:2 ~vpage:5 = None)

let test_tlb_global () =
  let t = Tlb.create Tlb.cortex_a9 in
  Tlb.insert t ~asid:1 ~vpage:9 (entry ~global:true 7);
  check cb "global hits under any ASID" true
    (Tlb.lookup t ~asid:200 ~vpage:9 <> None);
  check ci "flush_asid spares globals" 0 (Tlb.flush_asid t 1);
  check cb "still there" true (Tlb.lookup t ~asid:3 ~vpage:9 <> None);
  check ci "flush_all drops globals" 1 (Tlb.flush_all t)

let test_tlb_flush_asid () =
  let t = Tlb.create Tlb.cortex_a9 in
  Tlb.insert t ~asid:1 ~vpage:1 (entry 10);
  Tlb.insert t ~asid:1 ~vpage:2 (entry 11);
  Tlb.insert t ~asid:2 ~vpage:3 (entry 12);
  check ci "drops only asid 1" 2 (Tlb.flush_asid t 1);
  check cb "asid 2 survives" true (Tlb.lookup t ~asid:2 ~vpage:3 <> None)

let test_tlb_flush_page () =
  let t = Tlb.create Tlb.cortex_a9 in
  Tlb.insert t ~asid:1 ~vpage:1 (entry 10);
  Tlb.flush_page t ~asid:1 ~vpage:1;
  check cb "gone" true (Tlb.lookup t ~asid:1 ~vpage:1 = None)

(* O(1) generation-stamped flush_all: same returned count and later
   behaviour as the eager walk. *)
let test_tlb_gen_stamped_flush () =
  let t = Tlb.create { Tlb.entries = 4; ways = 2 } in
  Tlb.insert t ~asid:1 ~vpage:0 (entry 1);
  Tlb.insert t ~asid:1 ~vpage:1 (entry 2);
  Tlb.insert t ~asid:2 ~vpage:2 (entry ~global:true 3);
  check ci "live entries tracked" 3 (Tlb.live_entries t);
  check ci "flush_all drops everything at once" 3 (Tlb.flush_all t);
  check ci "nothing live" 0 (Tlb.live_entries t);
  check ci "second flush_all drops nothing" 0 (Tlb.flush_all t);
  check cb "stale entry never matches" true (Tlb.lookup t ~asid:1 ~vpage:0 = None);
  (* Stale slots are reusable: reinsert into the same set. *)
  Tlb.insert t ~asid:1 ~vpage:0 (entry 9);
  check cb "reinserted entry hits" true (Tlb.lookup t ~asid:1 ~vpage:0 <> None);
  check ci "one live again" 1 (Tlb.live_entries t)

let test_tlb_eviction () =
  (* 4-entry, 2-way TLB: 2 sets; three same-set insertions evict LRU. *)
  let t = Tlb.create { Tlb.entries = 4; ways = 2 } in
  Tlb.insert t ~asid:1 ~vpage:0 (entry 1);
  Tlb.insert t ~asid:1 ~vpage:2 (entry 2);
  ignore (Tlb.lookup t ~asid:1 ~vpage:0);
  Tlb.insert t ~asid:1 ~vpage:4 (entry 3);
  check cb "LRU victim" true (Tlb.lookup t ~asid:1 ~vpage:2 = None);
  check cb "MRU kept" true (Tlb.lookup t ~asid:1 ~vpage:0 <> None)

(* --- Hierarchy --- *)

let test_hierarchy_latency_ordering () =
  let clock = Clock.create () in
  let h = Hierarchy.create clock in
  let cost kind a = Hierarchy.access h kind a in
  let miss = cost Hierarchy.Load 0x10000 in
  let hit = cost Hierarchy.Load 0x10000 in
  check cb "miss slower than hit" true (miss > hit);
  check ci "L1 hit cost" (Hierarchy.default_latencies.Hierarchy.l1_hit) hit;
  check ci "full miss cost"
    (Hierarchy.default_latencies.Hierarchy.l1_hit
     + Hierarchy.default_latencies.Hierarchy.l2_hit
     + Hierarchy.default_latencies.Hierarchy.dram)
    miss;
  check cb "clock advanced" true (Clock.now clock = miss + hit)

let test_hierarchy_l2_hit () =
  let clock = Clock.create () in
  let h = Hierarchy.create clock in
  ignore (Hierarchy.access h Hierarchy.Load 0x20000);
  (* Evict from tiny L1? Instead, touch via Ifetch: the L1I misses but
     L2 already holds the line from the data access. *)
  let c = Hierarchy.access h Hierarchy.Ifetch 0x20000 in
  check ci "L1 miss, L2 hit"
    (Hierarchy.default_latencies.Hierarchy.l1_hit
     + Hierarchy.default_latencies.Hierarchy.l2_hit)
    c

let test_hierarchy_maintenance () =
  let clock = Clock.create () in
  let h = Hierarchy.create clock in
  ignore (Hierarchy.access h Hierarchy.Store 0x400);
  check cb "dirty seen" true (Hierarchy.dirty_in_range h 0x400 4);
  ignore (Hierarchy.clean_dcache_range h 0x400 32);
  check cb "clean clears" false (Hierarchy.dirty_in_range h 0x400 4);
  ignore (Hierarchy.access h Hierarchy.Store 0x800);
  ignore (Hierarchy.invalidate_dcache_range h 0x800 32);
  check cb "invalidate clears" false (Hierarchy.dirty_in_range h 0x800 4)

let test_hierarchy_uncached () =
  let clock = Clock.create () in
  let h = Hierarchy.create clock in
  let c = Hierarchy.access_uncached h in
  check cb "device access has a cost" true (c > 0);
  check ci "clock moved" c (Clock.now clock)

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "cachesim",
    [ t "cache geometry" test_cache_geometry;
      t "cache hit/miss" test_cache_hit_miss;
      t "cache LRU" test_cache_lru;
      t "cache dirty/clean" test_cache_dirty;
      t "cache invalidate" test_cache_invalidate;
      t "cache O(1) full maintenance" test_cache_gen_stamped_full_ops;
      t "cache large-range scan" test_cache_large_range_scan;
      QCheck_alcotest.to_alcotest prop_probe_after_access;
      t "tlb hit/miss" test_tlb_hit_miss;
      t "tlb asid isolation" test_tlb_asid_isolation;
      t "tlb global entries" test_tlb_global;
      t "tlb flush asid" test_tlb_flush_asid;
      t "tlb flush page" test_tlb_flush_page;
      t "tlb O(1) flush_all" test_tlb_gen_stamped_flush;
      t "tlb eviction" test_tlb_eviction;
      t "hierarchy latency ordering" test_hierarchy_latency_ordering;
      t "hierarchy l2 hit" test_hierarchy_l2_hit;
      t "hierarchy maintenance" test_hierarchy_maintenance;
      t "hierarchy uncached" test_hierarchy_uncached ] )

(* Invariant plane, resource-lifecycle regressions, and the soak
   engine. The lifecycle tests pin the PR's bug fixes: ASID/frame/slot
   reclamation on kill, event-queue cancel-after-fire, and vGIC
   latched-source accounting. *)

let ci = Alcotest.int
let cb = Alcotest.bool

let idle_guest _genv =
  while true do
    ignore (Hyper.pause ())
  done

(* ------------------------------------------------------------------ *)
(* VM lifecycle: 1000 create/kill cycles reuse a bounded pool of       *)
(* ASIDs, save-area slots and physical windows.                        *)

let test_create_kill_1000 () =
  let z = Zynq.create () in
  let kern = Kernel.boot z in
  let live = Queue.create () in
  for i = 1 to 1000 do
    let pd =
      Kernel.create_vm kern
        ~name:(Printf.sprintf "cycle%d" i)
        ~priority:(1 + (i mod 3))
        idle_guest
    in
    Queue.push pd.Pd.id live;
    (* Let a few quanta elapse so some guests actually run (and one of
       them is current when its killer strikes). *)
    if i mod 7 = 0 then Kernel.run_for kern (Cycles.of_us 300.0);
    (* Keep up to five alive so windows/slots recycle out of order. *)
    if Queue.length live > 5 then begin
      let victim = Queue.pop live in
      Alcotest.(check bool) "kill succeeds" true
        (Kernel.kill_vm kern victim ~reason:"lifecycle")
    end;
    if i mod 100 = 0 then
      Alcotest.(check (list string)) "invariants hold mid-churn" []
        (List.map Invariant.violation_to_string
           (Invariant.check kern ~boundary:"test"))
  done;
  Queue.iter
    (fun id -> ignore (Kernel.kill_vm kern id ~reason:"lifecycle"))
    live;
  Kernel.run_for kern (Cycles.of_ms 1.0);
  Alcotest.check ci "no guests left" 0 (Kernel.alive_guests kern);
  Alcotest.check ci "all guest ASIDs returned" 0
    (Kmem.live_asids (Kernel.kmem kern));
  Alcotest.(check (list string)) "invariants hold after churn" []
    (List.map Invariant.violation_to_string
       (Invariant.check kern ~boundary:"test"))

let test_double_kill_is_noop () =
  let z = Zynq.create () in
  let kern = Kernel.boot z in
  let pd = Kernel.create_vm kern ~name:"once" idle_guest in
  Alcotest.check cb "first kill" true
    (Kernel.kill_vm kern pd.Pd.id ~reason:"test");
  Alcotest.check cb "second kill reports false" false
    (Kernel.kill_vm kern pd.Pd.id ~reason:"test");
  Alcotest.check ci "asid freed once" 0 (Kmem.live_asids (Kernel.kmem kern));
  Alcotest.(check (list string)) "invariants hold" []
    (List.map Invariant.violation_to_string
       (Invariant.check kern ~boundary:"test"))

(* ------------------------------------------------------------------ *)
(* Event queue: cancelling an event that already fired is a no-op.     *)

let test_cancel_after_fire () =
  let clock = Clock.create () in
  let q = Event_queue.create clock in
  let fired = ref 0 in
  let id = Event_queue.schedule_after q 10 (fun () -> incr fired) in
  ignore (Event_queue.advance_until q 20);
  Alcotest.check ci "fired" 1 !fired;
  Alcotest.check ci "nothing pending" 0 (Event_queue.pending q);
  (* The regression: this used to decrement the live count below the
     truth, starving later runs. *)
  Event_queue.cancel q id;
  Alcotest.check ci "cancel-after-fire is a no-op" 0 (Event_queue.pending q);
  Alcotest.(check (list string)) "queue self-check clean" []
    (Event_queue.self_check q);
  let fired2 = ref 0 in
  ignore (Event_queue.schedule_after q 5 (fun () -> incr fired2));
  Alcotest.check ci "queue still counts new events" 1 (Event_queue.pending q);
  ignore (Event_queue.advance_until q 30);
  Alcotest.check ci "queue still fires" 1 !fired2

let test_cancel_self_while_firing () =
  let clock = Clock.create () in
  let q = Event_queue.create clock in
  let fired = ref 0 in
  let idr = ref None in
  idr :=
    Some
      (Event_queue.schedule_after q 5 (fun () ->
           incr fired;
           (* Reentrant cancel of the very event being run. *)
           Event_queue.cancel q (Option.get !idr)));
  ignore (Event_queue.advance_until q 10);
  Alcotest.check ci "fired exactly once" 1 !fired;
  Alcotest.check ci "nothing pending" 0 (Event_queue.pending q);
  Alcotest.(check (list string)) "no orphan tombstone" []
    (Event_queue.self_check q)

(* ------------------------------------------------------------------ *)
(* vGIC: clear_pending counts latched sources; unregister purges the   *)
(* arrival queue.                                                      *)

let test_vgic_clear_pending_counts_latched () =
  let v = Vgic.create ~owner:1 in
  Vgic.register v 33;
  Vgic.register v 34;
  Vgic.enable v 33;
  Vgic.enable v 34;
  Vgic.set_pending v 33;
  Vgic.set_pending v 34;
  Vgic.set_pending v 34 (* re-latch: must not double count *);
  Alcotest.check ci "two latches raised" 2 (Vgic.raised v);
  Alcotest.check ci "two latched" 2 (Vgic.latched v);
  (* Unregistering a pending source reclaims it and purges its queue
     entry (the regression left a stale arrival behind). *)
  Vgic.unregister v 33;
  Alcotest.check ci "one reclaimed by unregister" 1 (Vgic.reclaimed v);
  Alcotest.check ci "one still latched" 1 (Vgic.latched v);
  Alcotest.(check (list string)) "no stale arrival" [] (Vgic.self_check v);
  (* clear_pending returns the latched count, not the queue length. *)
  Alcotest.check ci "clear reports one source" 1 (Vgic.clear_pending v);
  Alcotest.check ci "nothing latched" 0 (Vgic.latched v);
  Alcotest.check ci "reclaim accounted" 2 (Vgic.reclaimed v);
  Alcotest.check ci "nothing was delivered" 0 (Vgic.delivered v);
  Alcotest.(check (list string)) "conservation holds" [] (Vgic.self_check v)

let test_vgic_conservation_through_delivery () =
  let v = Vgic.create ~owner:1 in
  Vgic.register v 40;
  Vgic.enable v 40;
  Vgic.set_pending v 40;
  Alcotest.(check (list ci)) "delivered in order" [ 40 ] (Vgic.drain v);
  Alcotest.check ci "delivery counted" 1 (Vgic.delivered v);
  Alcotest.check ci "raised once" 1 (Vgic.raised v);
  Alcotest.check ci "none latched" 0 (Vgic.latched v);
  Alcotest.check ci "clearing after drain finds nothing" 0
    (Vgic.clear_pending v);
  Alcotest.(check (list string)) "conservation holds" [] (Vgic.self_check v)

(* ------------------------------------------------------------------ *)
(* The checkers actually catch corruption.                             *)

let violation_checkers kern =
  List.map
    (fun v -> v.Invariant.checker)
    (Invariant.check kern ~boundary:"test")

let test_checker_catches_asid_leak () =
  let z = Zynq.create () in
  let kern = Kernel.boot z in
  ignore (Kernel.create_vm kern ~name:"g" idle_guest);
  Alcotest.(check (list string)) "clean before corruption" []
    (violation_checkers kern);
  ignore (Kmem.alloc_asid (Kernel.kmem kern));
  Alcotest.check cb "asid checker fires" true
    (List.mem "asid_accounting" (violation_checkers kern))

let test_checker_catches_frame_leak () =
  let z = Zynq.create () in
  let kern = Kernel.boot z in
  ignore (Kernel.create_vm kern ~name:"g" idle_guest);
  ignore (Frame_alloc.alloc (Kmem.allocator (Kernel.kmem kern)) 4096);
  Alcotest.check cb "frame checker fires" true
    (List.mem "frame_accounting" (violation_checkers kern))

let test_checker_catches_sched_corruption () =
  let z = Zynq.create () in
  let kern = Kernel.boot z in
  let pd = Kernel.create_vm kern ~name:"g" idle_guest in
  pd.Pd.state <- Pd.Blocked (* still enqueued: inconsistent *);
  Alcotest.check cb "sched checker fires" true
    (List.mem "sched" (violation_checkers kern));
  pd.Pd.state <- Pd.Runnable;
  Alcotest.(check (list string)) "clean after repair" []
    (violation_checkers kern)

(* ------------------------------------------------------------------ *)
(* Soak engine: clean, deterministic, replayable.                      *)

let stats_t =
  Alcotest.testable Soak.pp_stats (fun (a : Soak.stats) b -> a = b)

let smoke_config =
  { Soak.default_config with ops = 3000; seed = 11; max_vms = 4 }

let test_soak_smoke_clean () =
  match Soak.run smoke_config with
  | Soak.Clean stats ->
    Alcotest.check cb "did real work" true (stats.Soak.ops_done >= 3000);
    Alcotest.check cb "created VMs" true (stats.Soak.creates > 0);
    Alcotest.check cb "killed VMs" true (stats.Soak.kills > 0);
    Alcotest.check cb "invariants were evaluated" true
      (stats.Soak.checks > 0)
  | Soak.Violated { violation; shrunk; _ } ->
    Alcotest.failf "soak violated (%s) with %d-action reproducer"
      (Invariant.violation_to_string violation)
      (List.length shrunk)

let test_soak_deterministic () =
  match Soak.run smoke_config, Soak.run smoke_config with
  | Soak.Clean a, Soak.Clean b ->
    Alcotest.check stats_t "identical stats fingerprint" a b
  | _ -> Alcotest.fail "soak violated"

let test_soak_replay_deterministic () =
  let actions =
    [ Soak.A_create { profile = 0; prio = 1; gseed = 5 };
      Soak.A_probe 500;
      Soak.A_run 400;
      Soak.A_create { profile = 2; prio = 2; gseed = 9 };
      Soak.A_run 800;
      Soak.A_probe_cancel 0;
      Soak.A_kill 0;
      Soak.A_run 200;
      Soak.A_kill 0 ]
  in
  match
    Soak.replay smoke_config actions, Soak.replay smoke_config actions
  with
  | Soak.Clean a, Soak.Clean b ->
    Alcotest.check stats_t "replay is deterministic" a b;
    Alcotest.check ci "both creates applied" 2 a.Soak.creates;
    Alcotest.check ci "both kills applied" 2 a.Soak.kills;
    Alcotest.check ci "no VM survives" 0 a.Soak.live_vms
  | _ -> Alcotest.fail "replay violated"

(* ------------------------------------------------------------------ *)
(* Sharded soak: fixed decomposition, domain-count independence.       *)

let sharded_fingerprint (s : Soak.sharded) =
  (* Everything deterministic about a sharded run: merged stats, each
     shard's stats, and which shards violated (wall times excluded). *)
  ( s.Soak.merged_stats,
    List.map
      (fun (r : Soak.shard_report) ->
         ( r.Soak.shard,
           Soak.stats_of_outcome r.Soak.outcome,
           match r.Soak.outcome with
           | Soak.Clean _ -> None
           | Soak.Violated { violation; _ } ->
             Some violation.Invariant.checker ))
      s.Soak.reports,
    Option.map (fun r -> r.Soak.shard) s.Soak.first_violated )

let test_sharded_domain_independent () =
  let cfg = { smoke_config with Soak.ops = 20_000 } in
  let a = Soak.run_sharded ~domains:1 ~shards:4 cfg in
  let b = Soak.run_sharded ~domains:3 ~shards:4 cfg in
  Alcotest.check cb "identical outcomes for any domain budget" true
    (sharded_fingerprint a = sharded_fingerprint b);
  Alcotest.check ci "all shards ran" 4 (List.length a.Soak.reports);
  Alcotest.check cb "work actually split"
    true
    (List.for_all
       (fun (r : Soak.shard_report) -> r.Soak.shard_cfg.Soak.ops = 5_000)
       a.Soak.reports)

let test_sharded_one_shard_is_run () =
  match Soak.run smoke_config with
  | Soak.Violated _ -> Alcotest.fail "smoke config violated"
  | Soak.Clean direct ->
    let s = Soak.run_sharded ~domains:1 ~shards:1 smoke_config in
    Alcotest.check stats_t "1-shard run is exactly Soak.run" direct
      s.Soak.merged_stats

let test_shard_config_split () =
  let cfg = { smoke_config with Soak.ops = 10_001 } in
  let shards = 4 in
  let cfgs =
    List.init shards (fun i -> Soak.shard_config cfg ~shards ~shard:i)
  in
  Alcotest.check ci "ops budget conserved" cfg.Soak.ops
    (List.fold_left (fun acc c -> acc + c.Soak.ops) 0 cfgs);
  let seeds = List.map (fun c -> c.Soak.seed) cfgs in
  Alcotest.check ci "derived seeds are distinct"
    (List.length seeds)
    (List.length (List.sort_uniq compare seeds));
  Alcotest.check ci "derivation is deterministic"
    (Soak.shard_seed ~seed:cfg.Soak.seed ~shard:2)
    (List.nth seeds 2)

let test_sharded_reproducer_replays_single_domain () =
  (* The reproducer a violating shard writes carries that shard's
     derived config, so it replays in one domain with no sharding
     context at all — and deterministically. *)
  let scfg =
    Soak.shard_config
      { smoke_config with Soak.ops = 8_000 }
      ~shards:4 ~shard:2
  in
  let violation =
    { Invariant.checker = "sched"; boundary = "op"; detail = "synthetic" }
  in
  let shrunk =
    [ Soak.A_create { profile = 1; prio = 1; gseed = 42 };
      Soak.A_run 600;
      Soak.A_create { profile = 2; prio = 3; gseed = 7 };
      Soak.A_run 300;
      Soak.A_kill 0 ]
  in
  let path = Filename.temp_file "soak_shard_repro" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Soak.write_reproducer path scfg violation ~shrunk;
       match Soak.replay_file path, Soak.replay_file path with
       | Ok (Soak.Clean a), Ok (Soak.Clean b) ->
         Alcotest.check stats_t "single-domain replay is deterministic" a b;
         Alcotest.check ci "both creates applied" 2 a.Soak.creates
       | Ok _, Ok _ -> Alcotest.fail "replay tripped a checker"
       | Error e, _ | _, Error e -> Alcotest.failf "replay failed: %s" e)

let test_reproducer_roundtrip () =
  let cfg =
    { Soak.ops = 123_456; seed = 77; max_vms = 9; check = true;
      fault_rate = 0.25; fault_seed = 3; quantum_ms = 1.5; pcpus = 1 }
  in
  let violation =
    { Invariant.checker = "sched"; boundary = "op"; detail = "synthetic" }
  in
  let shrunk =
    [ Soak.A_create { profile = 3; prio = 2; gseed = 101 };
      Soak.A_run 250;
      Soak.A_probe 4096;
      Soak.A_probe_cancel 0;
      Soak.A_kill 1 ]
  in
  let path = Filename.temp_file "soak_repro" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Soak.write_reproducer path cfg violation ~shrunk;
       match Soak.load_reproducer path with
       | Error e -> Alcotest.failf "load failed: %s" e
       | Ok (cfg', actions) ->
         Alcotest.check ci "seed" cfg.Soak.seed cfg'.Soak.seed;
         Alcotest.check ci "ops" cfg.Soak.ops cfg'.Soak.ops;
         Alcotest.check ci "max vms" cfg.Soak.max_vms cfg'.Soak.max_vms;
         Alcotest.check (Alcotest.float 1e-9) "fault rate"
           cfg.Soak.fault_rate cfg'.Soak.fault_rate;
         Alcotest.check ci "fault seed" cfg.Soak.fault_seed
           cfg'.Soak.fault_seed;
         Alcotest.check (Alcotest.float 1e-9) "quantum"
           cfg.Soak.quantum_ms cfg'.Soak.quantum_ms;
         Alcotest.(check (list string)) "actions round-trip"
           (List.map Soak.action_to_string shrunk)
           (List.map Soak.action_to_string actions))

let suite =
  ( "check",
    [ Alcotest.test_case "1000 VM create/kill cycles" `Quick
        test_create_kill_1000;
      Alcotest.test_case "double kill is a no-op" `Quick
        test_double_kill_is_noop;
      Alcotest.test_case "event cancel after fire" `Quick
        test_cancel_after_fire;
      Alcotest.test_case "event cancels itself while firing" `Quick
        test_cancel_self_while_firing;
      Alcotest.test_case "vgic clear_pending counts latched" `Quick
        test_vgic_clear_pending_counts_latched;
      Alcotest.test_case "vgic conservation through delivery" `Quick
        test_vgic_conservation_through_delivery;
      Alcotest.test_case "checker catches ASID leak" `Quick
        test_checker_catches_asid_leak;
      Alcotest.test_case "checker catches frame leak" `Quick
        test_checker_catches_frame_leak;
      Alcotest.test_case "checker catches sched corruption" `Quick
        test_checker_catches_sched_corruption;
      Alcotest.test_case "soak smoke run is clean" `Quick
        test_soak_smoke_clean;
      Alcotest.test_case "soak is deterministic" `Quick
        test_soak_deterministic;
      Alcotest.test_case "soak replay is deterministic" `Quick
        test_soak_replay_deterministic;
      Alcotest.test_case "reproducer file round-trips" `Quick
        test_reproducer_roundtrip;
      Alcotest.test_case "sharded soak is domain-count independent" `Quick
        test_sharded_domain_independent;
      Alcotest.test_case "1-shard sharded run equals Soak.run" `Quick
        test_sharded_one_shard_is_run;
      Alcotest.test_case "shard config split conserves the budget" `Quick
        test_shard_config_split;
      Alcotest.test_case "shard reproducer replays single-domain" `Quick
        test_sharded_reproducer_replays_single_domain ] )

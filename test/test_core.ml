(* Unit tests for the microkernel's building blocks. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* --- Hypercall ABI --- *)

let all_requests =
  [ Hyper.Cache_clean_range { vaddr = 0; len = 1 };
    Hyper.Cache_invalidate_range { vaddr = 0; len = 1 };
    Hyper.Cache_flush_all;
    Hyper.Tlb_flush_asid;
    Hyper.Tlb_flush_all;
    Hyper.Irq_enable 0;
    Hyper.Irq_disable 0;
    Hyper.Irq_set_entry 0;
    Hyper.Irq_eoi 0;
    Hyper.Vtimer_config { interval = 1 };
    Hyper.Vtimer_stop;
    Hyper.Map_insert { vaddr = 0; gphys_off = 0; user = true };
    Hyper.Map_remove { vaddr = 0 };
    Hyper.Pt_alloc_l2 { vaddr = 0 };
    Hyper.Set_guest_mode Hyper.Gm_user;
    Hyper.Priv_reg_read Hyper.Reg_counter;
    Hyper.Priv_reg_write (Hyper.Reg_l2ctrl, 0);
    Hyper.Uart_write "";
    Hyper.Sd_read { block = 0 };
    Hyper.Sd_write { block = 0; data = Bytes.create 512 };
    Hyper.Hw_task_request
      { task = 0; iface_vaddr = 0; data_vaddr = 0; data_len = 0;
        want_irq = false };
    Hyper.Hw_task_release { task = 0 };
    Hyper.Hw_task_status { task = 0 };
    Hyper.Vm_send { dest = 0; payload = [||] };
    Hyper.Vm_recv ]

let test_hypercall_count_versioned () =
  (* The paper provides exactly 25 hypercalls (§V-B): that is ABI v1,
     pinned forever. The descriptor-ring extension is ABI v2. *)
  check ci "ABI v1 size" 25 Hyper.hypercall_count_v1;
  check ci "ABI v2 size" 27 Hyper.hypercall_count_v2;
  check ci "current ABI is v2" Hyper.hypercall_count_v2 Hyper.hypercall_count;
  check ci "abi_version" 2 Hyper.abi_version;
  check ci "v1 constructor coverage" 25 (List.length all_requests);
  List.iter
    (fun r -> check ci ("v1: " ^ Hyper.name r) 1 (Hyper.version_of r))
    all_requests;
  List.iter
    (fun r -> check ci ("v2: " ^ Hyper.name r) 2 (Hyper.version_of r))
    Hyper.requests_v2

let test_hypercall_numbering () =
  let numbers = List.map Hyper.number all_requests in
  check (Alcotest.list ci) "dense stable numbering 1..25"
    (List.init 25 (fun i -> i + 1))
    numbers;
  check (Alcotest.list ci) "v2 additions numbered 26..27" [ 26; 27 ]
    (List.map Hyper.number Hyper.requests_v2);
  let names = List.map Hyper.name (all_requests @ Hyper.requests_v2) in
  check ci "names unique" 27
    (List.length (List.sort_uniq String.compare names))

(* --- Klayout: code paths must not share cache lines --- *)

let test_klayout_disjoint () =
  let ranges =
    [ Klayout.vectors; Klayout.svc_entry; Klayout.svc_exit;
      Klayout.irq_entry; Klayout.und_entry; Klayout.abt_entry;
      Klayout.hyper_dispatch; Klayout.vgic_inject; Klayout.vm_switch;
      Klayout.sched_pick; Klayout.trap_decode; Klayout.ipc_copy;
      Klayout.ring_setup_stub; Klayout.ring_drain_stub;
      Klayout.ring_complete_stub;
      Klayout.mgr_entry_stub; Klayout.mgr_exit_stub; Klayout.mgr_main;
      Klayout.mgr_task_table; Klayout.mgr_prr_table; Klayout.mgr_stack;
      Klayout.kernel_stack; Klayout.pd_table ]
    @ List.init Hyper.hypercall_count (fun i -> Klayout.handler (i + 1))
    @ List.init 8 Klayout.vcpu_save_area
  in
  let sorted = List.sort compare ranges in
  let rec no_overlap = function
    | (b1, l1) :: ((b2, _) as r2) :: rest ->
      check cb
        (Printf.sprintf "ranges 0x%x(+%d) and 0x%x disjoint" b1 l1 b2)
        true
        (b1 + l1 <= b2);
      no_overlap (r2 :: rest)
    | _ -> ()
  in
  no_overlap sorted

let test_klayout_inside_kernel_image () =
  List.iter
    (fun (b, l) ->
       check cb "code in kernel code region" true
         (b >= Address_map.kernel_code_base
          && b + l
             <= Address_map.kernel_code_base + Address_map.kernel_code_size))
    [ Klayout.vectors; Klayout.vm_switch; Klayout.mgr_main;
      Klayout.handler 25 ]

(* --- Vgic --- *)

let test_vgic_lifecycle () =
  let v = Vgic.create ~owner:3 in
  check ci "owner" 3 (Vgic.owner v);
  Vgic.register v 61;
  check cb "registered" true (Vgic.registered v 61);
  Vgic.set_pending v 61;
  check cb "disabled not deliverable" false (Vgic.has_deliverable v);
  check (Alcotest.list ci) "drain keeps latched" [] (Vgic.drain v);
  Vgic.enable v 61;
  check cb "now deliverable" true (Vgic.has_deliverable v);
  check (Alcotest.list ci) "drained" [ 61 ] (Vgic.drain v);
  check cb "drained once" false (Vgic.has_deliverable v)

let test_vgic_arrival_order () =
  let v = Vgic.create ~owner:0 in
  List.iter
    (fun i ->
       Vgic.register v i;
       Vgic.enable v i)
    [ 10; 20; 30 ];
  Vgic.set_pending v 30;
  Vgic.set_pending v 10;
  Vgic.set_pending v 30; (* duplicate coalesces *)
  Vgic.set_pending v 20;
  check (Alcotest.list ci) "arrival order, no dups" [ 30; 10; 20 ]
    (Vgic.drain v)

let test_vgic_unregistered_latch () =
  let v = Vgic.create ~owner:0 in
  Vgic.set_pending v 95;
  Vgic.register v 95;
  Vgic.enable v 95;
  check (Alcotest.list ci) "latched before registration" [ 95 ] (Vgic.drain v)

let test_vgic_enable_requires_registration () =
  let v = Vgic.create ~owner:0 in
  Alcotest.check_raises "enable unknown"
    (Invalid_argument "Vgic: source not registered") (fun () ->
        Vgic.enable v 61)

let test_vgic_enabled_sources () =
  let v = Vgic.create ~owner:0 in
  List.iter
    (fun i ->
       Vgic.register v i;
       if i <> 20 then Vgic.enable v i)
    [ 30; 10; 20 ];
  check (Alcotest.list ci) "sorted enabled" [ 10; 30 ] (Vgic.enabled_sources v)

(* --- Sched --- *)

let mk_pd id prio =
  let mem = Phys_mem.create () in
  let fa = Frame_alloc.create ~base:Address_map.kernel_data_base ~size:(1 lsl 20) in
  let pt = Page_table.create mem fa in
  Pd.make ~id ~name:(Printf.sprintf "pd%d" id) ~kind:Pd.Guest ~priority:prio
    ~asid:(id + 2) ~pt ~phys_base:0 ~quantum:1000 ()

let pd_ids pds = List.map (fun p -> p.Pd.id) pds

let test_sched_priority_pick () =
  let s = Sched.create () in
  let a = mk_pd 1 1 and b = mk_pd 2 3 and c = mk_pd 3 2 in
  List.iter (Sched.enqueue s) [ a; b; c ];
  (match Sched.pick s with
   | Some p -> check ci "highest priority wins" 2 p.Pd.id
   | None -> Alcotest.fail "expected pick");
  Sched.dequeue s b;
  (match Sched.pick s with
   | Some p -> check ci "next level" 3 p.Pd.id
   | None -> Alcotest.fail "expected pick")

let test_sched_round_robin () =
  let s = Sched.create () in
  let a = mk_pd 1 1 and b = mk_pd 2 1 and c = mk_pd 3 1 in
  List.iter (Sched.enqueue s) [ a; b; c ];
  check (Alcotest.list ci) "ring order" [ 1; 2; 3 ]
    (pd_ids (Sched.level_members s 1));
  Sched.rotate s a;
  check (Alcotest.list ci) "rotated" [ 2; 3; 1 ]
    (pd_ids (Sched.level_members s 1));
  (match Sched.pick s with
   | Some p -> check ci "head after rotate" 2 p.Pd.id
   | None -> Alcotest.fail "pick");
  (* Rotating a non-head PD is a no-op. *)
  Sched.rotate s a;
  check (Alcotest.list ci) "unchanged" [ 2; 3; 1 ]
    (pd_ids (Sched.level_members s 1))

let test_sched_remove_head () =
  let s = Sched.create () in
  let a = mk_pd 1 1 and b = mk_pd 2 1 in
  Sched.enqueue s a;
  Sched.enqueue s b;
  Sched.dequeue s a;
  check (Alcotest.list ci) "survivor" [ 2 ] (pd_ids (Sched.level_members s 1));
  Sched.dequeue s b;
  check ci "empty" 0 (Sched.count s);
  check cb "nothing to pick" true (Sched.pick s = None)

let test_sched_reenqueue_idempotent () =
  let s = Sched.create () in
  let a = mk_pd 1 1 in
  Sched.enqueue s a;
  Sched.enqueue s a;
  check ci "no duplicates" 1 (Sched.count s)

let prop_sched_rotation_cycles =
  QCheck2.Test.make ~name:"N rotations return to original order" ~count:50
    QCheck2.Gen.(int_range 1 8)
    (fun n ->
       let s = Sched.create () in
       let pds = List.init n (fun i -> mk_pd i 1) in
       List.iter (Sched.enqueue s) pds;
       let before = pd_ids (Sched.level_members s 1) in
       for _ = 1 to n do
         match Sched.pick s with
         | Some head -> Sched.rotate s head
         | None -> ()
       done;
       pd_ids (Sched.level_members s 1) = before)

(* --- Ipc --- *)

let test_ipc_fifo () =
  let q = Ipc.create () in
  check cb "send a" true (Result.is_ok (Ipc.send q ~sender:1 [| 10 |]));
  check cb "send b" true (Result.is_ok (Ipc.send q ~sender:2 [| 20 |]));
  (match Ipc.recv q with
   | Some m ->
     check ci "fifo sender" 1 m.Ipc.sender;
     check ci "payload" 10 m.Ipc.payload.(0)
   | None -> Alcotest.fail "expected message");
  check ci "depth" 1 (Ipc.depth q)

let test_ipc_bounds () =
  let q = Ipc.create () in
  for i = 1 to Ipc.capacity do
    check cb "fits" true (Result.is_ok (Ipc.send q ~sender:i [||]))
  done;
  check cb "overflow refused" true (Result.is_error (Ipc.send q ~sender:0 [||]));
  check cb "oversize refused" true
    (Result.is_error (Ipc.send q ~sender:0 (Array.make (Ipc.max_words + 1) 0)))

let test_ipc_payload_isolation () =
  let q = Ipc.create () in
  let payload = [| 1; 2; 3 |] in
  ignore (Ipc.send q ~sender:1 payload);
  payload.(0) <- 99;
  (match Ipc.recv q with
   | Some m -> check ci "copied at send" 1 m.Ipc.payload.(0)
   | None -> Alcotest.fail "expected message")

(* --- Vcpu --- *)

let test_vcpu_state () =
  let v = Vcpu.create ~pd_id:3 () in
  check ci "pd id" 3 (Vcpu.pd_id v);
  check cb "boots in guest-kernel mode" true (Vcpu.guest_mode v = Hyper.Gm_kernel);
  Vcpu.set_guest_mode v Hyper.Gm_user;
  check cb "mode switch" true (Vcpu.guest_mode v = Hyper.Gm_user);
  let base, len = Vcpu.save_area v in
  let base4, _ = Vcpu.save_area (Vcpu.create ~pd_id:4 ()) in
  check cb "save areas disjoint" true (base + len <= base4)

let test_vcpu_switch_costs () =
  let z = Zynq.create () in
  let kmem = Kmem.create z in
  ignore kmem;
  let a = Vcpu.create ~pd_id:1 () and b = Vcpu.create ~pd_id:2 () in
  let t0 = Clock.now z.Zynq.clock in
  Vcpu.save_active z a;
  Vcpu.restore_active z b;
  let active = Clock.now z.Zynq.clock - t0 in
  check cb "active switch costs time" true (active > 0);
  let t1 = Clock.now z.Zynq.clock in
  Vcpu.switch_vfp z ~from:(Some a) ~to_:b;
  let vfp = Clock.now z.Zynq.clock - t1 in
  check cb "lazy VFP switch is expensive (Table I)" true (vfp > active / 2)

(* --- Kmem --- *)

let test_kmem_guest_spaces_isolated () =
  let z = Zynq.create () in
  let kmem = Kmem.create z in
  let pt0 = Kmem.make_guest_pt kmem ~index:0 in
  let pt1 = Kmem.make_guest_pt kmem ~index:1 in
  let walk pt v =
    Page_table.walk ~read:(Phys_mem.read_u32 z.Zynq.mem)
      ~root:(Page_table.root pt) ~virt:v
  in
  let va = Guest_layout.user_base + 0x0010_0000 in
  let off = va - Guest_layout.kernel_base in
  (match walk pt0 va, walk pt1 va with
   | Some (p0, _), Some (p1, _) ->
     check cb "same vaddr, distinct physical backing" true (p0 <> p1);
     check ci "guest 0 backing" (Address_map.guest_phys_base 0 + off) p0;
     check ci "guest 1 backing" (Address_map.guest_phys_base 1 + off) p1
   | _ -> Alcotest.fail "guest areas must be mapped");
  (* Kernel globals appear in both. *)
  (match walk pt0 Address_map.kernel_code_base with
   | Some (p, attrs) ->
     check ci "kernel identity" Address_map.kernel_code_base p;
     check cb "kernel priv" true (attrs.Pte.ap = Pte.Ap_priv);
     check cb "kernel global" true attrs.Pte.global
   | None -> Alcotest.fail "kernel must be mapped in guests");
  (* The bitstream store is manager-only (paper §IV-B). *)
  check cb "bitstream store hidden from guests" true
    (walk pt0 Address_map.bitstream_store_base = None)

let test_kmem_guest_map_page () =
  let z = Zynq.create () in
  let kmem = Kmem.create z in
  let pt = Kmem.make_guest_pt kmem ~index:0 in
  let pd =
    Pd.make ~id:1 ~name:"g" ~kind:Pd.Guest ~priority:1 ~asid:2 ~pt
      ~phys_base:(Address_map.guest_phys_base 0) ~quantum:100 ()
  in
  let vaddr = Guest_layout.page_region_base + 0x3000 in
  check cb "map ok" true
    (Result.is_ok
       (Kmem.guest_map_page kmem pd ~vaddr ~gphys_off:0x0070_0000 ~user:true));
  check cb "outside page region refused" true
    (Result.is_error
       (Kmem.guest_map_page kmem pd ~vaddr:0x0050_0000 ~gphys_off:0 ~user:true));
  check cb "offset beyond allotment refused" true
    (Result.is_error
       (Kmem.guest_map_page kmem pd ~vaddr ~gphys_off:(64 lsl 20) ~user:true));
  check cb "unmap ok" true (Result.is_ok (Kmem.guest_unmap_page kmem pd ~vaddr));
  check cb "double unmap reports" true
    (Result.is_error (Kmem.guest_unmap_page kmem pd ~vaddr))

let test_kmem_iface_mapping () =
  let z = Zynq.create () in
  let kmem = Kmem.create z in
  let pt = Kmem.make_guest_pt kmem ~index:0 in
  let pd =
    Pd.make ~id:1 ~name:"g" ~kind:Pd.Guest ~priority:1 ~asid:2 ~pt
      ~phys_base:(Address_map.guest_phys_base 0) ~quantum:100 ()
  in
  let prr = Prr_controller.prr z.Zynq.prrc 1 in
  let vaddr = Guest_layout.default_iface_vaddr 1 in
  check cb "iface map" true
    (Result.is_ok
       (Kmem.map_iface kmem pd ~prr_regs_base:prr.Prr.regs_base ~vaddr));
  (match
     Page_table.walk ~read:(Phys_mem.read_u32 z.Zynq.mem)
       ~root:(Page_table.root pt) ~virt:vaddr
   with
   | Some (pa, _) -> check ci "maps to PRR page" prr.Prr.regs_base pa
   | None -> Alcotest.fail "iface must be mapped");
  Kmem.unmap_iface kmem pd ~vaddr;
  check cb "demapped" true
    (Page_table.walk ~read:(Phys_mem.read_u32 z.Zynq.mem)
       ~root:(Page_table.root pt) ~virt:vaddr
     = None)

let test_kmem_asid_allocation () =
  let z = Zynq.create () in
  let kmem = Kmem.create z in
  let a = Kmem.alloc_asid kmem and b = Kmem.alloc_asid kmem in
  check ci "starts at 2 (0=kernel, 1=manager)" 2 a;
  check ci "monotonic" 3 b

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "core",
    [ t "hypercall counts are versioned" test_hypercall_count_versioned;
      t "hypercall numbering" test_hypercall_numbering;
      t "klayout disjoint" test_klayout_disjoint;
      t "klayout in kernel image" test_klayout_inside_kernel_image;
      t "vgic lifecycle" test_vgic_lifecycle;
      t "vgic arrival order" test_vgic_arrival_order;
      t "vgic unregistered latch" test_vgic_unregistered_latch;
      t "vgic enable requires registration" test_vgic_enable_requires_registration;
      t "vgic enabled sources" test_vgic_enabled_sources;
      t "sched priority pick" test_sched_priority_pick;
      t "sched round robin" test_sched_round_robin;
      t "sched remove head" test_sched_remove_head;
      t "sched reenqueue idempotent" test_sched_reenqueue_idempotent;
      QCheck_alcotest.to_alcotest prop_sched_rotation_cycles;
      t "ipc fifo" test_ipc_fifo;
      t "ipc bounds" test_ipc_bounds;
      t "ipc payload isolation" test_ipc_payload_isolation;
      t "vcpu state" test_vcpu_state;
      t "vcpu switch costs" test_vcpu_switch_costs;
      t "kmem guest isolation" test_kmem_guest_spaces_isolated;
      t "kmem guest map page" test_kmem_guest_map_page;
      t "kmem iface mapping" test_kmem_iface_mapping;
      t "kmem asid allocation" test_kmem_asid_allocation ] )

(* Equivalence of the compiled kernel control paths with the scalar
   reference walk.

   The kernel charges its own control paths — SVC entry and hypercall
   dispatch, per-hypercall handler bodies, world switch (vCPU save,
   scheduler pick, vCPU restore), IRQ entry, virtual-IRQ inject and
   manager entry/exit — through pinned Exec footprints, which the fast
   path compiles into replayable trace programs. Those programs
   promise to be bit-identical to the reference walk under any guest
   behaviour: same simulated cycles, same cache/TLB counters, same
   kernel event timeline, same observability counters. This property
   drives randomized multi-guest workloads through two fresh kernels —
   fast path on and off — and compares the full fingerprint. *)

let check = Alcotest.check

(* --- randomized scenario parameters --- *)

type params = {
  quantum_ms : float;
  guests : (int * int * int) list;  (* (variant, priority, gseed) *)
  run_ms : int;
  kill_after : bool;   (* kill the first guest, then run again *)
}

let gen_params =
  QCheck.Gen.(
    let* quantum_ms = oneofl [ 0.5; 1.0; 2.0 ] in
    let* nguests = int_range 1 3 in
    let* guests =
      list_repeat nguests
        (triple (int_bound 3) (int_range 1 3) (int_bound 100_000))
    in
    let* run_ms = int_range 5 40 in
    let* kill_after = bool in
    return { quantum_ms; guests; run_ms; kill_after })

let show_params p =
  Printf.sprintf "{q=%.1fms run=%dms kill=%b guests=[%s]}" p.quantum_ms
    p.run_ms p.kill_after
    (String.concat "; "
       (List.map
          (fun (v, pr, g) -> Printf.sprintf "(%d,%d,%d)" v pr g)
          p.guests))

let arb_params = QCheck.make ~print:show_params gen_params

(* A guest body mixing cheap and heavy hypercalls, IRQ churn, IPC and
   hostile arguments — every dispatch goes through the compiled
   prologue/handler/exit traces, and the pauses in between exercise
   the world-switch save/pick/restore traces. *)
let guest_body ~variant ~gseed _genv =
  let rng = Rng.create ~seed:gseed in
  while true do
    (match (variant + Rng.int rng 8) land 7 with
     | 0 -> ignore (Hyper.hypercall (Hyper.Uart_write "c"))
     | 1 -> ignore (Hyper.hypercall Hyper.Tlb_flush_asid)
     | 2 -> ignore (Hyper.hypercall (Hyper.Irq_enable (32 + Rng.int rng 8)))
     | 3 ->
       ignore
         (Hyper.hypercall
            (Hyper.Vm_send
               { dest = Rng.int rng 4; payload = [| Rng.int rng 1000 |] }))
     | 4 -> ignore (Hyper.hypercall Hyper.Vm_recv)
     | 5 -> ignore (Hyper.hypercall (Hyper.Sd_read { block = Rng.int rng 8 }))
     | 6 -> ignore (Hyper.hypercall (Hyper.Irq_enable (-1)))
     | _ ->
       ignore
         (Hyper.hypercall
            (Hyper.Vtimer_config
               { interval = Cycles.of_us (float_of_int (50 + Rng.int rng 300))
               })));
    ignore (Hyper.pause ())
  done

let drive ~fast p =
  let z = Zynq.create ~observe:true () in
  Fastpath.set_enabled z.Zynq.fast fast;
  let kern =
    Kernel.boot
      ~config:
        { Kernel.default_config with quantum = Cycles.of_ms p.quantum_ms }
      z
  in
  let tr = Ktrace.create ~capacity:8192 in
  Kernel.set_trace kern (Some tr);
  let ids =
    List.mapi
      (fun i (variant, priority, gseed) ->
         (Kernel.create_vm kern
            ~name:(Printf.sprintf "g%d" i)
            ~priority (guest_body ~variant ~gseed)).Pd.id)
      p.guests
  in
  Kernel.run kern ~until:(Cycles.of_ms (float_of_int p.run_ms));
  if p.kill_after then begin
    (match ids with
     | id :: _ -> ignore (Kernel.kill_vm kern id ~reason:"equivalence test")
     | [] -> ());
    Kernel.run kern ~until:(Cycles.of_ms (float_of_int (p.run_ms + 5)))
  end;
  (z, kern, tr)

let fingerprint (z, kern, tr) =
  let h = z.Zynq.hier in
  let counters =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "%s=%d" k v)
         (Obs.snapshot z.Zynq.obs).Obs.s_counters)
  in
  let events =
    String.concat "\n"
      (List.map
         (fun e -> Format.asprintf "%a" Ktrace.pp_event e)
         (Ktrace.events tr))
  in
  Printf.sprintf
    "clock=%d hyper=%d crashes=%d alive=%d l1i=%d/%d l1d=%d/%d l2=%d/%d \
     tlb=%d/%d obs[%s] trace[%d dropped %d]\n%s"
    (Clock.now z.Zynq.clock)
    (Kernel.hypercalls kern) (Kernel.crashes kern)
    (Kernel.alive_guests kern)
    (Cache.hits (Hierarchy.l1i h)) (Cache.misses (Hierarchy.l1i h))
    (Cache.hits (Hierarchy.l1d h)) (Cache.misses (Hierarchy.l1d h))
    (Cache.hits (Hierarchy.l2 h)) (Cache.misses (Hierarchy.l2 h))
    (Tlb.hits z.Zynq.tlb) (Tlb.misses z.Zynq.tlb)
    counters
    (List.length (Ktrace.events tr)) (Ktrace.dropped tr)
    events

let first_diff_line a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | x :: xs, y :: ys ->
      if String.equal x y then go (i + 1) (xs, ys)
      else Printf.sprintf "line %d: fast %S vs ref %S" i x y
    | x :: _, [] -> Printf.sprintf "line %d only in fast: %S" i x
    | [], y :: _ -> Printf.sprintf "line %d only in ref: %S" i y
    | [], [] -> "no textual diff"
  in
  go 0 (la, lb)

let prop_equivalent p =
  let f = fingerprint (drive ~fast:true p) in
  let r = fingerprint (drive ~fast:false p) in
  if not (String.equal f r) then
    QCheck.Test.fail_reportf "control paths diverged for %s:@ %s"
      (show_params p) (first_diff_line f r);
  true

let test_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25
       ~name:"kernel control paths: fastpath == reference (random guests)"
       arb_params prop_equivalent)

(* The property above must not pass vacuously: the fast kernel has to
   actually compile and replay control-path trace programs. *)
let test_control_traces_taken () =
  let p =
    { quantum_ms = 1.0; guests = [ (0, 1, 7); (1, 2, 13) ]; run_ms = 20;
      kill_after = false }
  in
  let z, kern, _ = drive ~fast:true p in
  let _, _, warm_replays, warm_records = Fastpath.stats z.Zynq.fast in
  check Alcotest.bool "control-path programs compiled" true
    (warm_records > 0);
  check Alcotest.bool "control-path programs replayed" true
    (warm_replays > 0);
  check Alcotest.bool "hypercalls dispatched" true
    (Kernel.hypercalls kern > 100)

let suite =
  ( "ctrlpath",
    [ test_equivalence;
      Alcotest.test_case "control traces actually taken" `Quick
        test_control_traces_taken ] )

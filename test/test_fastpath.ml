(* Equivalence of the Exec fast path with the scalar reference walk.

   The fast path (per-CPU micro-TLB, compiled footprint programs with
   partial-warm replay, O(1) generation-stamped maintenance) promises
   to be bit-identical to the reference implementation: same simulated
   cycles and the same hit/miss counters in every cache level and the
   TLB, under any interleaving of footprint runs, cache maintenance,
   TLB flushes, ASID switches and page-table edits. This test drives a
   randomized op sequence through two fresh boards — one with
   [Fastpath] enabled, one disabled — and compares the full counter
   fingerprint after every op. *)

let check = Alcotest.check

(* --- randomized op DSL --- *)

type op =
  | Run of int                 (* footprint pool index *)
  | Touch of int * int * int   (* kind (0 load / 1 store / 2 fetch), off, len *)
  | Set_asid of int
  | Flush_asid of int
  | Flush_all
  | Inval_d of int * int       (* data offset, len *)
  | Clean_d of int * int
  | Inval_i
  | Pt_toggle of int * bool    (* scratch page index; flush the TLB page *)
  | Pt_remap of int * int * bool
      (* scratch page index, alternate physical frame index; flush —
         remaps virt to a *different* physical frame, the case where
         cache epochs stay untouched while the translation changes *)

let data_base = Address_map.kernel_data_base + 0x40000
let code_base = Address_map.kernel_code_base + 0x8000

(* Scratch pages live outside every region the kernel table section-maps,
   so the DSL can map and unmap them page-by-page. *)
let scratch_base = 0x3000_0000
let scratch_pages = 4
let scratch_page i = scratch_base + (i * Addr.page_size)

(* Alternate physical frames for [Pt_remap], disjoint from the scratch
   pages' identity frames so a remap genuinely moves the page to a
   different physical base. *)
let scratch_frames = 4
let scratch_frame i = scratch_base + 0x10_0000 + (i * Addr.page_size)

(* A small pool of footprints, referenced by index so the same value
   recurs (that is what compiles and then replays the programs).
   Data ranges overlap across footprints to force eviction interplay;
   f6 reads a scratch page whose mapping the DSL edits underneath it. *)
let pool =
  [| { Exec.label = "f0"; code = { Exec.base = code_base; len = 256 };
       reads = []; writes = []; base_cycles = 10 };
     { Exec.label = "f1"; code = { Exec.base = code_base + 0x400; len = 128 };
       reads = [ { Exec.base = data_base; len = 256 } ];
       writes = []; base_cycles = 0 };
     { Exec.label = "f2"; code = { Exec.base = code_base + 0x800; len = 512 };
       reads = [ { Exec.base = data_base + 128; len = 512 } ];
       writes = [ { Exec.base = data_base + 0x1000; len = 128 } ];
       base_cycles = 25 };
     { Exec.label = "f3"; code = { Exec.base = code_base; len = 64 };
       reads = [ { Exec.base = data_base + 0x2000; len = 64 };
                 { Exec.base = data_base; len = 96 } ];
       writes = [ { Exec.base = data_base + 0x2000; len = 64 } ];
       base_cycles = 5 };
     { Exec.label = "f4"; code = { Exec.base = code_base + 0x7000; len = 4096 };
       reads = [ { Exec.base = data_base + 0x8000; len = 8192 } ];
       writes = [ { Exec.base = data_base + 0x10000; len = 4096 } ];
       base_cycles = 100 };
     { Exec.label = "f5"; code = { Exec.base = code_base + 0x400; len = 128 };
       reads = [ { Exec.base = data_base; len = 256 } ];
       writes = [ { Exec.base = data_base + 64; len = 32 } ];
       base_cycles = 0 };
     { Exec.label = "f6"; code = { Exec.base = code_base + 0x100; len = 64 };
       reads = [ { Exec.base = scratch_page 0; len = 128 } ];
       writes = [ { Exec.base = scratch_page 1; len = 64 } ];
       base_cycles = 0 } |]

let gen_op =
  QCheck.Gen.(frequency
    [ 8, map (fun i -> Run i) (int_bound (Array.length pool - 1));
      2, map3 (fun k off len -> Touch (k, off * 4, 4 + (len * 4)))
           (int_bound 2) (int_bound 0x1000) (int_bound 127);
      1, map (fun a -> Set_asid a) (int_bound 3);
      1, map (fun a -> Flush_asid a) (int_bound 3);
      1, return Flush_all;
      1, map2 (fun off len -> Inval_d (off * 4, 4 + (len * 4)))
           (int_bound 0x1000) (int_bound 255);
      1, map2 (fun off len -> Clean_d (off * 4, 4 + (len * 4)))
           (int_bound 0x1000) (int_bound 255);
      1, return Inval_i;
      2, map2 (fun i flush -> Pt_toggle (i, flush))
           (int_bound (scratch_pages - 1)) bool;
      2, map3 (fun i p flush -> Pt_remap (i, p, flush))
           (int_bound (scratch_pages - 1)) (int_bound (scratch_frames - 1))
           bool ])

let show_op = function
  | Run i -> Printf.sprintf "Run %d" i
  | Touch (k, o, l) -> Printf.sprintf "Touch (%d, 0x%x, %d)" k o l
  | Set_asid a -> Printf.sprintf "Set_asid %d" a
  | Flush_asid a -> Printf.sprintf "Flush_asid %d" a
  | Flush_all -> "Flush_all"
  | Inval_d (o, l) -> Printf.sprintf "Inval_d (0x%x, %d)" o l
  | Clean_d (o, l) -> Printf.sprintf "Clean_d (0x%x, %d)" o l
  | Inval_i -> "Inval_i"
  | Pt_toggle (i, f) -> Printf.sprintf "Pt_toggle (%d, %b)" i f
  | Pt_remap (i, p, f) -> Printf.sprintf "Pt_remap (%d, %d, %b)" i p f

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map show_op ops))
    QCheck.Gen.(list_size (int_range 10 120) gen_op)

(* --- the two worlds --- *)

let make_board ~fast =
  let z = Zynq.create () in
  let km = Kmem.create z in
  Fastpath.set_enabled z.Zynq.fast fast;
  (z, km)

let apply (z, km) op =
  match op with
  | Run i ->
    (* f6 touches scratch pages that may currently be unmapped; the
       fault itself (with its charged walk reads) must be identical on
       both boards, so it is part of the fingerprint, not an error. *)
    (try ignore (Exec.run z ~priv:true pool.(i)) with Mmu.Fault _ -> ())
  | Touch (k, off, len) ->
    let kind, base =
      match k with
      | 0 -> Hierarchy.Load, data_base + off
      | 1 -> Hierarchy.Store, data_base + off
      | _ -> Hierarchy.Ifetch, code_base + off
    in
    (try Exec.touch z ~priv:true kind { Exec.base; len }
     with Mmu.Fault _ -> ())
  | Set_asid a -> Mmu.set_asid z.Zynq.mmu a
  | Flush_asid a -> ignore (Tlb.flush_asid z.Zynq.tlb a)
  | Flush_all -> ignore (Tlb.flush_all z.Zynq.tlb)
  | Inval_d (off, len) ->
    ignore (Hierarchy.invalidate_dcache_range z.Zynq.hier (data_base + off) len)
  | Clean_d (off, len) ->
    ignore (Hierarchy.clean_dcache_range z.Zynq.hier (data_base + off) len)
  | Inval_i -> ignore (Hierarchy.invalidate_icache_all z.Zynq.hier)
  | Pt_toggle (i, flush) ->
    (* Map the scratch page if absent, unmap it if present. Without the
       TLB flush a stale translation keeps working on both boards (as on
       hardware); with it, the epoch bump forces the fast path to
       revalidate and possibly fault. *)
    let virt = scratch_page i in
    let pt = Kmem.kernel_pt km in
    if not (Page_table.unmap_page pt ~virt) then
      Page_table.map_page pt ~virt ~phys:virt ~domain:Kmem.dom_kernel
        ~ap:Pte.Ap_priv ~global:true;
    if flush then
      Tlb.flush_page z.Zynq.tlb ~asid:(Mmu.asid z.Zynq.mmu)
        ~vpage:(virt lsr Addr.page_shift)
  | Pt_remap (i, p, flush) ->
    (* Point the scratch page at an alternate physical frame. With the
       TLB page flush this bumps only the *TLB* epoch: the fast path
       must notice the physical base moved and not replay L1 slots
       recorded for the old frame's lines. *)
    let virt = scratch_page i in
    let pt = Kmem.kernel_pt km in
    ignore (Page_table.unmap_page pt ~virt);
    Page_table.map_page pt ~virt ~phys:(scratch_frame p)
      ~domain:Kmem.dom_kernel ~ap:Pte.Ap_priv ~global:true;
    if flush then
      Tlb.flush_page z.Zynq.tlb ~asid:(Mmu.asid z.Zynq.mmu)
        ~vpage:(virt lsr Addr.page_shift)

let fingerprint (z, _) =
  let h = z.Zynq.hier in
  [ Clock.now z.Zynq.clock;
    Cache.hits (Hierarchy.l1i h); Cache.misses (Hierarchy.l1i h);
    Cache.hits (Hierarchy.l1d h); Cache.misses (Hierarchy.l1d h);
    Cache.hits (Hierarchy.l2 h); Cache.misses (Hierarchy.l2 h);
    Tlb.hits z.Zynq.tlb; Tlb.misses z.Zynq.tlb ]

let prop_equivalent ops =
  let bf = make_board ~fast:true in
  let br = make_board ~fast:false in
  List.iteri
    (fun i op ->
       apply bf op;
       apply br op;
       let f = fingerprint bf and r = fingerprint br in
       if f <> r then
         QCheck.Test.fail_reportf
           "diverged after op %d (%s):@ fast %s@ ref  %s" i (show_op op)
           (String.concat "," (List.map string_of_int f))
           (String.concat "," (List.map string_of_int r)))
    ops;
  true

let test_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"fastpath == reference (random ops)"
       arb_ops prop_equivalent)

(* Determinized sanity check that the fast board actually takes the
   shortcuts (otherwise the property above would pass vacuously). *)
let test_shortcuts_taken () =
  let ((z, _) as b) = make_board ~fast:true in
  for _ = 1 to 50 do
    ignore (Exec.run z ~priv:true pool.(2))
  done;
  let _, _, warm_replays, warm_records = Fastpath.stats z.Zynq.fast in
  check Alcotest.bool "program compiled" true (warm_records > 0);
  check Alcotest.bool "program replayed warm" true (warm_replays > 0);
  (* f5's read and write ranges share a page: compiling it walks that
     page twice, the second translate hitting the micro-TLB. *)
  ignore (Exec.run z ~priv:true pool.(5));
  let mtlb_hits, _, _, _ = Fastpath.stats z.Zynq.fast in
  check Alcotest.bool "micro-TLB hit" true (mtlb_hits > 0);
  (* Invalidate only f2's write range: the next visit walks that one
     run cold and still bulk-replays the code and read runs. *)
  apply b (Inval_d (0x1000, 128));
  ignore (Exec.run z ~priv:true pool.(2));
  check Alcotest.bool "partial-warm replay" true
    (Fastpath.partial_replays z.Zynq.fast > 0)

(* Regression: remapping a virtual page to a *different* physical frame
   and flushing the TLB page bumps only the TLB epoch — the cache
   epochs (notably L1I, which page walks never touch) can stay
   unchanged. The replay tier must not reproduce hits recorded for the
   old frame's lines; it has to fall through to the self-verifying
   tiers and walk the new lines cold, exactly like the reference. *)
let test_remap_invalidates_replay () =
  let bf = make_board ~fast:true in
  let br = make_board ~fast:false in
  let ops =
    [ Pt_toggle (0, false); Pt_toggle (1, false) (* map scratch pages *);
      Run 6; Run 6 (* compile, then warm-replay the program *);
      Pt_remap (0, 2, true) (* move the frame; flush only the TLB page *);
      Run 6; Run 6 ]
  in
  List.iteri
    (fun i op ->
       apply bf op;
       apply br op;
       check (Alcotest.list Alcotest.int)
         (Printf.sprintf "fingerprint after op %d (%s)" i (show_op op))
         (fingerprint br) (fingerprint bf))
    ops

(* The warm replay must charge exactly the modelled warm cost. *)
let test_replay_cycles_exact () =
  let z, _ = make_board ~fast:true in
  let fp = pool.(2) in
  ignore (Exec.run z ~priv:true fp);
  let w1 = Exec.run z ~priv:true fp in
  let w2 = Exec.run z ~priv:true fp in
  check Alcotest.int "replayed run costs the warm cost" w1 w2;
  check Alcotest.int "matches the static estimate"
    (Exec.estimate_warm_cycles fp) w2

let suite =
  ( "fastpath",
    [ test_equivalence;
      Alcotest.test_case "shortcuts actually taken" `Quick
        test_shortcuts_taken;
      Alcotest.test_case "remap invalidates replay" `Quick
        test_remap_invalidates_replay;
      Alcotest.test_case "replay cycles exact" `Quick
        test_replay_cycles_exact ] )

(* Fault-injection plane, graceful degradation, and the hardening
   fixes that ride along (PCAP latency formula, busy-race rollback,
   Ktrace overwrite semantics, kernel kill-and-reclaim). *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Fault plane                                                        *)

let test_plane_disabled_and_deterministic () =
  let p = Fault_plane.disabled () in
  for i = 0 to 99 do
    check cb "disabled never injects" true
      (Fault_plane.draw p ~at:i ~prr:0 ~candidates:Fault_plane.all_faults
       = None)
  done;
  check ci "nothing counted" 0 (Fault_plane.total_injected p);
  let seq seed =
    let p = Fault_plane.create ~seed ~rate:0.3 () in
    List.init 200 (fun i ->
        Fault_plane.draw p ~at:i ~prr:(i mod 4)
          ~candidates:Fault_plane.all_faults)
  in
  check cb "same seed, same schedule" true (seq 11 = seq 11);
  check cb "different seed, different schedule" true (seq 11 <> seq 12);
  let p1 = Fault_plane.create ~seed:5 ~rate:1.0 () in
  for i = 0 to 49 do
    check cb "rate 1.0 always injects" true
      (Fault_plane.draw p1 ~at:i ~prr:0 ~candidates:[ Fault_plane.Ip_hang ]
       = Some Fault_plane.Ip_hang)
  done;
  check ci "all counted" 50 (Fault_plane.injected p1 Fault_plane.Ip_hang);
  check cb "empty candidates never inject" true
    (Fault_plane.draw p1 ~at:0 ~prr:0 ~candidates:[] = None)

let test_plane_log_bounded () =
  let p = Fault_plane.create ~seed:1 ~rate:1.0 () in
  for i = 0 to 4999 do
    ignore
      (Fault_plane.draw p ~at:i ~prr:0 ~candidates:[ Fault_plane.Dma_error ])
  done;
  let log = Fault_plane.drain p in
  check ci "log capped" 4096 (List.length log);
  check ci "overflow counted" (5000 - 4096) (Fault_plane.log_dropped p);
  check cb "oldest dropped, newest kept" true
    ((List.nth log (List.length log - 1)).Fault_plane.at = 4999);
  check ci "drain clears" 0 (List.length (Fault_plane.drain p));
  check ci "counters survive drain" 5000 (Fault_plane.total_injected p)

(* ------------------------------------------------------------------ *)
(* Satellite: PCAP latency derived from the throughput constant       *)

let test_pcap_latency_formula () =
  List.iter
    (fun kind ->
       let b =
         Bitstream.make ~id:1 ~kind
           ~store_addr:Address_map.bitstream_store_base
       in
       let expect =
         Cycles.of_us
           (float_of_int b.Bitstream.size_bytes
            /. (float_of_int Pcap.throughput_bytes_per_sec /. 1e6))
       in
       check ci (Task_kind.name kind) expect (Pcap.transfer_cycles b))
    [ Task_kind.Qam 4; Task_kind.Fft 256; Task_kind.Fft 8192;
      Task_kind.Fir 31 ];
  (* Pin the constant itself: 80 KB at 145 MB/s is ~565 us. *)
  check ci "145 MB/s" 145_000_000 Pcap.throughput_bytes_per_sec;
  let qam =
    Bitstream.make ~id:1 ~kind:(Task_kind.Qam 4)
      ~store_addr:Address_map.bitstream_store_base
  in
  check ci "80 KB downloads in ~565 us"
    (Cycles.of_us (float_of_int (80 * 1024) /. 145.0))
    (Pcap.transfer_cycles qam)

(* ------------------------------------------------------------------ *)
(* Manager-level recovery (no kernel in the loop)                     *)

let setup ?prr_capacities ?fault_rate ?fault_seed () =
  let z = Zynq.create ?prr_capacities ?fault_rate ?fault_seed () in
  ignore (Kmem.create z);
  let hwtm = Hw_task_manager.create z in
  (z, hwtm)

let plain_client ?(id = 7) () =
  { Hw_task_manager.client_id = id;
    data_window = (Address_map.guest_phys_base 0, 65536);
    map_iface = (fun _ -> Ok ());
    unmap_iface = (fun _ -> ());
    notify_irq = (fun _ _ -> ()) }

let settle ?(ms = 30.0) z =
  ignore
    (Event_queue.advance_until z.Zynq.queue
       (Clock.now z.Zynq.clock + Cycles.of_ms ms))

let test_download_retry_then_quarantine () =
  (* Every download fails: the manager must retry with backoff, give
     the allocation up at the limit, and quarantine the region. *)
  let z, hwtm = setup ~prr_capacities:[ 200 ] ~fault_rate:1.0 () in
  let qam = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  let cl = plain_client ~id:3 () in
  let r = Hw_task_manager.request hwtm cl ~task:qam ~want_irq:false in
  check cb "reconfig launched" true
    (r.Hw_task_manager.status = Hyper.Hw_reconfig);
  settle z;
  check ci "download failed" 1 (Pcap.failures z.Zynq.pcap);
  check cb "region left empty" true
    ((Prr_controller.prr z.Zynq.prrc 0).Prr.state = Prr.Empty);
  (* Keep re-allocating the flaky region: each allocation exhausts its
     retry budget (backoff must elapse, each failing download must
     complete) and is given up; after quarantine_threshold consecutive
     give-ups the region is quarantined. *)
  let pol = Hw_task_manager.policy hwtm in
  let gave_up = ref 0 and quarantined = ref false and nretry = ref 0 in
  let rounds = ref 0 in
  while (not !quarantined) && !rounds < 80 do
    incr rounds;
    if
      Hw_task_manager.prr_client hwtm 0 = None
      && not (Pcap.busy z.Zynq.pcap)
    then
      ignore (Hw_task_manager.request hwtm cl ~task:qam ~want_irq:false);
    List.iter
      (fun a ->
         match a with
         | Hw_task_manager.Act_retry _ -> incr nretry
         | Hw_task_manager.Act_gave_up _ -> incr gave_up
         | Hw_task_manager.Act_quarantine _ -> quarantined := true
         | _ -> ())
      (Hw_task_manager.health_scan hwtm);
    settle ~ms:5.0 z
  done;
  check ci "give-ups until quarantine" pol.quarantine_threshold !gave_up;
  check ci "bounded retries per allocation"
    (pol.reconfig_retry_limit * !gave_up)
    !nretry;
  check cb "region quarantined" true !quarantined;
  let _, consistent = Hw_task_manager.poll hwtm ~client_id:3 ~task:qam in
  check cb "client sees the loss" false consistent;
  check (Alcotest.option ci) "row unclaimed" None
    (Hw_task_manager.prr_client hwtm 0);
  (* While quarantined, the only suitable region is out of rotation. *)
  let r2 = Hw_task_manager.request hwtm cl ~task:qam ~want_irq:false in
  check cb "quarantined region not allocatable" true
    (r2.Hw_task_manager.status = Hyper.Hw_busy);
  (* Heal the fabric, wait out the penalty: service resumes. *)
  Fault_plane.arm z.Zynq.faults ~seed:0 ~rate:0.0;
  settle ~ms:60.0 z;
  let unq =
    List.exists
      (function Hw_task_manager.Act_unquarantine _ -> true | _ -> false)
      (Hw_task_manager.health_scan hwtm)
  in
  check cb "quarantine expires" true unq;
  let r3 = Hw_task_manager.request hwtm cl ~task:qam ~want_irq:false in
  check cb "region back in rotation" true
    (r3.Hw_task_manager.status = Hyper.Hw_reconfig);
  settle z;
  let ready, _ = Hw_task_manager.poll hwtm ~client_id:3 ~task:qam in
  check cb "healthy again" true ready

let test_retry_recovers_transient_failure () =
  (* First download fails, the fabric heals, the relaunch succeeds:
     the client keeps its allocation through the fault. *)
  let z, hwtm = setup ~prr_capacities:[ 200 ] ~fault_rate:1.0 () in
  let qam = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  let cl = plain_client ~id:4 () in
  ignore (Hw_task_manager.request hwtm cl ~task:qam ~want_irq:false);
  settle z;
  Fault_plane.arm z.Zynq.faults ~seed:0 ~rate:0.0;
  let saw_retry = ref false and saw_recovered = ref false in
  for _ = 1 to 10 do
    List.iter
      (fun a ->
         match a with
         | Hw_task_manager.Act_retry _ -> saw_retry := true
         | Hw_task_manager.Act_recovered _ -> saw_recovered := true
         | _ -> ())
      (Hw_task_manager.health_scan hwtm);
    settle ~ms:5.0 z
  done;
  check cb "relaunched" true !saw_retry;
  check cb "recovered" true !saw_recovered;
  let ready, consistent = Hw_task_manager.poll hwtm ~client_id:4 ~task:qam in
  check cb "ready after recovery" true ready;
  check cb "allocation kept" true consistent;
  check ci "fault surfaced in status" 1
    (Hw_task_manager.faults hwtm ~client_id:4 ~task:qam)

let test_hung_ip_force_reset () =
  let z, hwtm = setup ~prr_capacities:[ 200 ] () in
  let qam = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  ignore
    (Hw_task_manager.request hwtm (plain_client ~id:5 ()) ~task:qam
       ~want_irq:false);
  settle z;
  let prr = Prr_controller.prr z.Zynq.prrc 0 in
  check cb "ready" true (prr.Prr.state = Prr.Ready);
  (* Wedge the core by hand, then step past the execution timeout. *)
  prr.Prr.state <- Prr.Busy;
  prr.Prr.busy_since <- Clock.now z.Zynq.clock;
  check ci "healthy scan sees nothing yet" 0
    (List.length (Hw_task_manager.health_scan hwtm));
  Clock.advance z.Zynq.clock
    ((Hw_task_manager.policy hwtm).exec_timeout + 1);
  let acts = Hw_task_manager.health_scan hwtm in
  check cb "hung core reset" true
    (List.exists
       (function Hw_task_manager.Act_reset_hung _ -> true | _ -> false)
       acts);
  check cb "region usable again" true (prr.Prr.state = Prr.Ready);
  check ci "reset counted" 1 (Hw_task_manager.hang_resets hwtm);
  check ci "fault attributed to the allocation" 1
    (Hw_task_manager.faults hwtm ~client_id:5 ~task:qam);
  (* The client's next status read reports the device fault (bit 4). *)
  check cb "status bit 4 latched" true
    (Int32.to_int (Prr.read_reg prr Prr.Reg.status) land 0b10000 <> 0)

(* Satellite: losing the PCAP race must roll the allocation back. The
   channel is idle when the manager checks it but a handler run inside
   map_iface slips a download in before the manager's own launch. *)
let test_busy_race_rolled_back () =
  let z, hwtm = setup ~prr_capacities:[ 200; 200 ] () in
  let _q4 = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  let q16 = Hw_task_manager.register_task hwtm (Task_kind.Qam 16) in
  let unmapped = ref 0 in
  let sneak =
    Bitstream.make ~id:99 ~kind:(Task_kind.Qam 4)
      ~store_addr:Address_map.bitstream_store_base
  in
  let c2 =
    { (plain_client ~id:2 ()) with
      Hw_task_manager.data_window = (Address_map.guest_phys_base 1, 4096);
      map_iface =
        (let sneaked = ref false in
         fun _ ->
           (* First call only: grab the channel behind the manager's
              back, as a completion handler could. *)
           if not !sneaked then begin
             sneaked := true;
             ignore
               (Pcap.launch z.Zynq.pcap sneak
                  (Prr_controller.prr z.Zynq.prrc 1))
           end;
           Ok ());
      unmap_iface = (fun _ -> incr unmapped) }
  in
  let r = Hw_task_manager.request hwtm c2 ~task:q16 ~want_irq:true in
  check cb "reported busy" true (r.Hw_task_manager.status = Hyper.Hw_busy);
  (* Nothing half-claimed: row, hwMMU window, IRQ and mapping undone. *)
  let prr0 = Prr_controller.prr z.Zynq.prrc 0 in
  check (Alcotest.option ci) "row unclaimed" None
    (Hw_task_manager.prr_client hwtm 0);
  check cb "window cleared" true (Hw_mmu.window prr0.Prr.hw_mmu = None);
  check cb "irq released" true (prr0.Prr.irq_index = None);
  check ci "interface demapped" 1 !unmapped;
  (* Once the channel clears, the same request goes through. *)
  settle z;
  let r2 = Hw_task_manager.request hwtm c2 ~task:q16 ~want_irq:true in
  check cb "retry succeeds" true
    (r2.Hw_task_manager.status = Hyper.Hw_reconfig);
  settle z;
  let ready, _ = Hw_task_manager.poll hwtm ~client_id:2 ~task:q16 in
  check cb "configured on retry" true ready

(* Satellite: a bad interface address fails recoverably. *)
let test_map_iface_failure_is_recoverable () =
  let z, hwtm = setup ~prr_capacities:[ 200 ] () in
  let qam = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  let bad =
    { (plain_client ~id:1 ()) with
      Hw_task_manager.map_iface = (fun _ -> Error "vaddr not page aligned") }
  in
  let r = Hw_task_manager.request hwtm bad ~task:qam ~want_irq:false in
  check cb "fault, not crash" true (r.Hw_task_manager.status = Hyper.Hw_fault);
  check (Alcotest.option ci) "row unclaimed" None
    (Hw_task_manager.prr_client hwtm 0);
  let r2 =
    Hw_task_manager.request hwtm (plain_client ~id:2 ()) ~task:qam
      ~want_irq:false
  in
  check cb "next client unaffected" true
    (r2.Hw_task_manager.status = Hyper.Hw_reconfig);
  ignore (settle z)

let test_bitstream_store_full () =
  let _, hwtm = setup () in
  let first = Hw_task_manager.register_task hwtm (Task_kind.Fft 256) in
  let full = ref false in
  (try
     (* 28 MB store / ~600 KB per FFT-8192: fills well within 100. *)
     for _ = 1 to 100 do
       ignore (Hw_task_manager.register_task hwtm (Task_kind.Fft 8192))
     done
   with Failure m ->
     full := true;
     check cb "store-full diagnosis" true
       (m = "Hw_task_manager: bitstream store full"));
  check cb "store eventually fills" true !full;
  (* Earlier registrations still work after the refusal. *)
  check cb "existing tasks intact" true
    (Hw_task_manager.task_kind hwtm first = Some (Task_kind.Fft 256))

(* ------------------------------------------------------------------ *)
(* Satellite: Ktrace overwrite-oldest semantics                       *)

let mark tr at text =
  Ktrace.record tr at ~category:"mark" ~name:"mark"
    [ ("text", Ktrace.Str text) ]

let test_ktrace_wraparound () =
  let tr = Ktrace.create ~capacity:4 in
  for i = 1 to 10 do
    mark tr i (string_of_int i)
  done;
  let marks =
    List.map
      (fun (e : Ktrace.event) ->
         match e.Ktrace.fields with
         | [ ("text", Ktrace.Str m) ] -> m
         | _ -> "?")
      (Ktrace.events tr)
  in
  check (Alcotest.list Alcotest.string) "newest capacity events kept"
    [ "7"; "8"; "9"; "10" ] marks;
  check ci "overwrites counted as dropped" 6 (Ktrace.dropped tr);
  check ci "total = retained + dropped" 10
    (List.length (Ktrace.events tr) + Ktrace.dropped tr);
  Ktrace.clear tr;
  check ci "clear empties the ring" 0 (List.length (Ktrace.events tr));
  check ci "clear resets dropped" 0 (Ktrace.dropped tr);
  mark tr 11 "post-clear";
  check ci "ring usable after clear" 1 (List.length (Ktrace.events tr))

(* ------------------------------------------------------------------ *)
(* Kernel: violation limit -> VM kill with full reclamation           *)

let test_violation_kill_reclaims_everything () =
  let z = Zynq.create () in
  let kern = Kernel.boot z in
  let trace = Ktrace.create ~capacity:4096 in
  Kernel.set_trace kern (Some trace);
  let qam_id = Kernel.register_hw_task kern (Task_kind.Qam 4) in
  let limit =
    (Hw_task_manager.policy (Kernel.hwtm kern)).kill_violation_threshold
  in
  let evil =
    Kernel.create_vm kern ~name:"evil" (fun genv ->
         let os = Ucos.create (Port.paravirt genv) in
         ignore
           (Ucos.spawn os ~name:"main" ~prio:5 (fun () ->
                match
                  Hw_task_api.acquire os ~task:qam_id ~want_irq:false
                    ~data_len:4096 ()
                with
                | Error e -> failwith e
                | Ok h ->
                  (* Hammer the hwMMU until the kernel pulls the plug;
                     the kill lands at a kernel tick, after which the
                     fiber is never resumed. *)
                  for _ = 1 to limit + 4 do
                    Hw_task_api.start os h ~src_off:64 ~dst_off:(1 lsl 20)
                      ~len:16 ~param:0;
                    (match Hw_task_api.wait_done os h with
                     | `Violation | `Fault | `Done | `Reclaimed -> ());
                    Ucos.delay os 1
                  done));
         Ucos.run os)
  in
  Kernel.run kern ~until:(Cycles.of_ms 5000.0);
  check ci "VM killed" 0 (Kernel.alive_guests kern);
  check ci "kill is graceful, not a crash" 0 (Kernel.crashes kern);
  check ci "kill counted" 1 (Probe.count (Kernel.probe kern) "fault_kill");
  (* Everything reclaimed: PRRs, hwMMU windows, pending vIRQs. *)
  for i = 0 to Prr_controller.prr_count z.Zynq.prrc - 1 do
    let prr = Prr_controller.prr z.Zynq.prrc i in
    check (Alcotest.option ci) "PRR unclaimed" None
      (Hw_task_manager.prr_client (Kernel.hwtm kern) i);
    check cb "window cleared" true (Hw_mmu.window prr.Prr.hw_mmu = None)
  done;
  (* The dead guest is reaped from the PD table entirely; its held Pd.t
     shows the Dead state and no latched vIRQs survive the kill. *)
  check (Alcotest.option ci) "dead PD reaped from the kernel" None
    (Option.map (fun pd -> pd.Pd.id) (Kernel.pd kern evil.Pd.id));
  check cb "held handle marked dead" true (evil.Pd.state = Pd.Dead);
  check ci "no latched vIRQs" 0 (Vgic.clear_pending evil.Pd.vgic);
  check cb "only the service PD remains" true
    (List.for_all (fun pd -> not (Pd.is_guest pd)) (Kernel.pds kern));
  check cb "death traced" true
    (List.exists
       (fun (e : Ktrace.event) ->
          match List.assoc_opt "reason" e.Ktrace.fields with
          | Some (Ktrace.Str reason) ->
            String.length reason >= 5
            && String.sub reason 0 5 = "hwMMU"
          | _ -> false)
       (Ktrace.find trace ~category:"sched" ~name:"vm-dead" ()))

(* ------------------------------------------------------------------ *)
(* Chaos scenario                                                     *)

let quick_chaos rate =
  { Chaos.default_config with
    base = { Scenario.default_config with requests_per_guest = 10 };
    fault_rate = rate }

let test_chaos_rate_zero_is_clean () =
  let r = Chaos.run ~config:(quick_chaos 0.0) ~guests:1 () in
  check ci "no injections" 0 r.Chaos.injected;
  check ci "no trace injects" 0 r.Chaos.trace_injects;
  check ci "no recoveries" 0 r.Chaos.recoveries;
  check ci "no quarantines" 0 r.Chaos.quarantines;
  check ci "no kills" 0 r.Chaos.fault_kills;
  check ci "no crashes" 0 r.Chaos.crashes;
  check cb "all jobs complete" true (r.Chaos.completion_rate = 1.0);
  check cb "jobs actually ran" true (r.Chaos.jobs_ok > 0)

let test_chaos_deterministic_and_recovering () =
  let cfg = quick_chaos 0.2 in
  let r = Chaos.run ~config:cfg ~guests:2 () in
  check cb "faults injected" true (r.Chaos.injected > 0);
  check ci "every injection traced" r.Chaos.injected r.Chaos.trace_injects;
  check cb "recovery machinery engaged" true
    (r.Chaos.recoveries + r.Chaos.reconfig_retries + r.Chaos.quarantines
     > 0);
  check cb "recoveries traced" true (r.Chaos.trace_recovers > 0);
  check ci "kernel survives" 0 r.Chaos.crashes;
  check cb "guests still complete jobs" true (r.Chaos.jobs_ok > 0);
  let r' = Chaos.run ~config:cfg ~guests:2 () in
  check cb "bit-identical under a fixed seed" true (r = r');
  (* A different fault seed produces a different schedule. *)
  let r2 =
    Chaos.run ~config:{ cfg with fault_seed = cfg.fault_seed + 1 }
      ~guests:2 ()
  in
  check cb "seed changes the schedule" true
    (r2.Chaos.injected_by <> r.Chaos.injected_by
     || r2.Chaos.jobs_ok <> r.Chaos.jobs_ok
     || r2.Chaos.sim_ms <> r.Chaos.sim_ms)

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "faults",
    [ t "plane disabled/deterministic" test_plane_disabled_and_deterministic;
      t "plane log bounded" test_plane_log_bounded;
      t "pcap latency formula" test_pcap_latency_formula;
      t "download retry then quarantine" test_download_retry_then_quarantine;
      t "retry recovers transient failure"
        test_retry_recovers_transient_failure;
      t "hung ip force reset" test_hung_ip_force_reset;
      t "busy race rolled back" test_busy_race_rolled_back;
      t "map_iface failure recoverable" test_map_iface_failure_is_recoverable;
      t "bitstream store full" test_bitstream_store_full;
      t "ktrace wraparound" test_ktrace_wraparound;
      t "violation kill reclaims everything"
        test_violation_kill_reclaims_everything;
      t "chaos rate 0 clean" test_chaos_rate_zero_is_clean;
      t "chaos deterministic and recovering"
        test_chaos_deterministic_and_recovering ] )

(* Tests for the evaluation harness: a miniature Table III scenario run,
   table/figure construction, ablations, and the complexity report. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let tiny =
  { Scenario.default_config with
    Scenario.requests_per_guest = 8;
    warmup_requests = 2;
    job_fraction = 3 }

let test_scenario_native () =
  let o = Scenario.run_native ~config:tiny () in
  check cb "samples collected" true (o.Scenario.samples > 0);
  check (Alcotest.float 0.0) "native entry is zero" 0.0 o.Scenario.entry_us;
  check (Alcotest.float 0.0) "native plirq is zero" 0.0 o.Scenario.plirq_us;
  check cb "native exec in the paper's ballpark" true
    (o.Scenario.exec_us > 5.0 && o.Scenario.exec_us < 40.0);
  check cb "total equals exec natively" true
    (Float.abs (o.Scenario.total_us -. o.Scenario.exec_us) < 1e-9);
  check cb "reconfigurations happened" true (o.Scenario.reconfigs > 0);
  check ci "no hwmmu violations in a clean run" 0 o.Scenario.hwmmu_violations

let test_scenario_one_guest () =
  let o = Scenario.run_virtualized ~config:tiny ~guests:1 () in
  check cb "entry charged under virtualization" true (o.Scenario.entry_us > 0.1);
  check cb "exit charged" true (o.Scenario.exit_us > 0.1);
  check cb "total = entry+exec+exit" true
    (Float.abs
       (o.Scenario.total_us
        -. (o.Scenario.entry_us +. o.Scenario.exec_us +. o.Scenario.exit_us))
     < 1e-6);
  check cb "virtualized exec close to native scale" true
    (o.Scenario.exec_us > 5.0 && o.Scenario.exec_us < 40.0)

let test_scenario_determinism () =
  let a = Scenario.run_virtualized ~config:tiny ~guests:1 () in
  let b = Scenario.run_virtualized ~config:tiny ~guests:1 () in
  check cb "same seed, identical measurements" true
    (a.Scenario.total_us = b.Scenario.total_us
     && a.Scenario.reconfigs = b.Scenario.reconfigs
     && a.Scenario.sim_ms = b.Scenario.sim_ms)

(* --- Tables / Fig 9 plumbing (on synthetic data) --- *)

let fake entry exit_ plirq exec =
  { Scenario.entry_us = entry; exit_us = exit_; plirq_us = plirq;
    exec_us = exec; total_us = entry +. exec +. exit_;
    samples = 1; reconfigs = 0; reclaims = 0; jobs = 0;
    hwmmu_violations = 0; sim_ms = 0.0; sim_cycles = 0;
    metrics = Obs.empty_snapshot }

let sweep =
  [ fake 0.0 0.0 0.0 15.0;     (* native *)
    fake 0.9 0.7 0.2 15.5;     (* 1 VM *)
    fake 1.1 0.9 0.4 16.0 ]    (* 2 VMs *)

let test_table3_rows () =
  let rows = Tables.table3_rows sweep in
  check ci "five metrics" 5 (List.length rows);
  let metric, values = List.hd rows in
  check Alcotest.string "first row" "HW Manager entry" metric;
  check (Alcotest.list (Alcotest.float 1e-9)) "entry values" [ 0.0; 0.9; 1.1 ]
    values;
  let _, totals = List.nth rows 4 in
  check (Alcotest.list (Alcotest.float 1e-9)) "totals" [ 15.0; 17.1; 18.0 ]
    totals

let test_fig9_normalisation () =
  let rows = Tables.fig9_rows sweep in
  (* entry (zero natively) normalises to the 1-VM value... *)
  let _, entry = List.hd rows in
  check (Alcotest.list (Alcotest.float 1e-6)) "entry ratios"
    [ 1.0; 1.1 /. 0.9 ] entry;
  (* ...execution normalises to native (paper Eq 1). *)
  let _, exec = List.nth rows 3 in
  check (Alcotest.list (Alcotest.float 1e-6)) "exec ratios"
    [ 15.5 /. 15.0; 16.0 /. 15.0 ] exec

let test_paper_fig9_shape () =
  (* The paper's own numbers: every ratio series is non-decreasing. *)
  List.iter
    (fun (metric, ratios) ->
       let rec mono = function
         | a :: (b :: _ as rest) ->
           check cb (metric ^ " monotone") true (b >= a -. 1e-9);
           mono rest
         | _ -> ()
       in
       mono ratios)
    Tables.paper_fig9

(* --- Ablations --- *)

let test_reconfig_table () =
  let rows = Ablations.reconfig_table () in
  check ci "one row per task" (List.length Scenario.standard_task_set)
    (List.length rows);
  (* Latency grows with bitstream size. *)
  List.iter
    (fun r ->
       let expected_ms =
         float_of_int (r.Ablations.bitstream_kb * 1024) /. 145.0e6 *. 1e3
       in
       check cb
         (r.Ablations.task ^ " latency matches PCAP throughput")
         true
         (Float.abs (r.Ablations.reconfig_ms -. expected_ms)
          < 0.02 *. expected_ms +. 0.01))
    rows;
  let fft8k = List.find (fun r -> r.Ablations.task = "FFT-8192") rows in
  let qam = List.find (fun r -> r.Ablations.task = "QAM-4") rows in
  check cb "FFT-8192 slower than QAM-4" true
    (fft8k.Ablations.reconfig_ms > qam.Ablations.reconfig_ms)

let test_axi_ablation () =
  let r = Ablations.axi_ablation () in
  check cb "ACP wire-faster" true (r.Ablations.acp_dma_us <= r.Ablations.hp_dma_us);
  check cb "but ACP pollutes the CPU's L2 (paper S IV-A)" true
    (r.Ablations.cpu_after_acp_us > r.Ablations.cpu_after_hp_us *. 1.2)

let test_vfp_ablation () =
  let r = Ablations.vfp_ablation ~switches:60 () in
  check cb "lazy does fewer VFP switches" true
    (r.Ablations.lazy_vfp_switches < r.Ablations.active_vfp_switches);
  check cb "active switching costs more per VM switch" true
    (r.Ablations.active_switch_us > r.Ablations.lazy_switch_us)

let test_trap_vs_hypercall () =
  let r = Ablations.trap_vs_hypercall ~iterations:100 () in
  check cb "hypercall cheaper than trap-and-emulate (paper S II-A)" true
    (r.Ablations.hypercall_us < r.Ablations.trap_us);
  check cb "both nonzero" true (r.Ablations.hypercall_us > 0.0)

(* --- Complexity report --- *)

let test_complexity_report () =
  let r = Complexity.measure ~root:"../../.." () in
  check ci "hypercalls from the ABI" 25 r.Complexity.hypercalls;
  check (Alcotest.float 0.5) "33 ms time slice" 33.0 r.Complexity.time_slice_ms

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  let s n f = Alcotest.test_case n `Slow f in
  ( "harness",
    [ s "scenario native" test_scenario_native;
      s "scenario one guest" test_scenario_one_guest;
      s "scenario determinism" test_scenario_determinism;
      t "table3 rows" test_table3_rows;
      t "fig9 normalisation" test_fig9_normalisation;
      t "paper fig9 shape" test_paper_fig9_shape;
      t "reconfig table" test_reconfig_table;
      s "axi ablation" test_axi_ablation;
      s "vfp ablation" test_vfp_ablation;
      s "trap vs hypercall" test_trap_vs_hypercall;
      t "complexity report" test_complexity_report ] )

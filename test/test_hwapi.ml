(* End-to-end hardware-task tests: guests using DPR accelerators under
   Mini-NOVA, including the paper's security and consistency paths. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let boot_with_tasks kinds =
  let z = Zynq.create () in
  let kern = Kernel.boot z in
  let ids = List.map (Kernel.register_hw_task kern) kinds in
  (z, kern, ids)

let run kern = Kernel.run kern ~until:(Cycles.of_ms 5000.0)

let guest kern name body =
  ignore
    (Kernel.create_vm kern ~name (fun genv ->
         let os = Ucos.create (Port.paravirt genv) in
         ignore (Ucos.spawn os ~name:"main" ~prio:5 (fun () -> body os));
         Ucos.run os))

let test_fft_through_vm () =
  let z, kern, ids = boot_with_tasks [ Task_kind.Fft 256 ] in
  let fft_id = List.hd ids in
  let err = ref infinity in
  guest kern "fft" (fun os ->
      match Hw_task_api.acquire os ~task:fft_id ~want_irq:true () with
      | Error e -> failwith e
      | Ok h ->
        let re = Array.init 256 (fun i -> cos (0.07 *. float_of_int i)) in
        let im = Array.make 256 0.0 in
        (match Hw_task_api.run_fft os h ~inverse:false ~re ~im with
         | Ok (hr, hi) ->
           let sr = Array.copy re and si = Array.copy im in
           Fft.transform sr si;
           err := Float.max (Fft.max_error hr sr) (Fft.max_error hi si)
         | Error e -> failwith e);
        Hw_task_api.release os h);
  run kern;
  check ci "no crash" 0 (Kernel.crashes kern);
  check cb "hardware FFT matches software" true (!err < 0.01);
  check cb "a reconfiguration happened" true
    (Pcap.transfers z.Zynq.pcap >= 1)

let test_qam_poll_mode () =
  (* Poll-based completion (the paper's first acknowledgement method). *)
  let _, kern, ids = boot_with_tasks [ Task_kind.Qam 16 ] in
  let qam_id = List.hd ids in
  let ok = ref false in
  guest kern "qam" (fun os ->
      match Hw_task_api.acquire os ~task:qam_id ~want_irq:false () with
      | Error e -> failwith e
      | Ok h ->
        let bits = Array.init 64 (fun i -> (i / 7) land 1) in
        (match Hw_task_api.run_qam_mod os h ~order:16 ~bits with
         | Ok (i, q) ->
           ok := Qam.demodulate Qam.Qam16 ~i ~q = bits
         | Error e -> failwith e));
  run kern;
  check cb "poll-mode job verified" true !ok

let test_reclaim_between_vms () =
  (* Two VMs compete for the single FFT-capable pair of PRRs with the
     same task; verify the §IV-C consistency machinery. *)
  let z = Zynq.create ~prr_capacities:[ 1300 ] () in
  let kern = Kernel.boot z in
  let fft_id = Kernel.register_hw_task kern (Task_kind.Fft 256) in
  let flag_seen = ref false and fault_seen = ref false in
  let vm1_holds = ref false in
  guest kern "vm1" (fun os ->
      match Hw_task_api.acquire os ~task:fft_id () with
      | Error e -> failwith e
      | Ok h ->
        vm1_holds := true;
        (* Sleep long enough for vm2 to steal the PRR... *)
        Ucos.delay os 30;
        (* ...then observe the inconsistency both ways. *)
        flag_seen := Hw_task_api.inconsistent os h;
        (try ignore (Hw_task_api.read_reg os h 0)
         with Hw_task_api.Reclaimed -> fault_seen := true));
  guest kern "vm2" (fun os ->
      while not !vm1_holds do
        Ucos.delay os 1
      done;
      match Hw_task_api.acquire os ~task:fft_id () with
      | Error e -> failwith e
      | Ok _ -> ());
  Kernel.run kern ~until:(Cycles.of_ms 10000.0);
  check ci "no crash" 0 (Kernel.crashes kern);
  check ci "one reclaim" 1 (Hw_task_manager.reclaims (Kernel.hwtm kern));
  check cb "state flag marks inconsistency (method 1)" true !flag_seen;
  check cb "demapped interface faults (method 2)" true !fault_seen

let test_hwmmu_blocks_escape () =
  (* A malicious guest points the job outside its data section; the
     hwMMU must refuse and the rest of memory stay untouched. *)
  let z, kern, ids = boot_with_tasks [ Task_kind.Qam 4 ] in
  let qam_id = List.hd ids in
  let refused = ref false in
  guest kern "evil" (fun os ->
      match
        Hw_task_api.acquire os ~task:qam_id ~want_irq:false ~data_len:4096 ()
      with
      | Error e -> failwith e
      | Ok h ->
        (* dst offset way beyond the 4 KB window *)
        Hw_task_api.start os h ~src_off:64 ~dst_off:(1 lsl 20) ~len:16
          ~param:0;
        (match Hw_task_api.wait_done os h with
         | `Violation -> refused := true
         | `Done | `Fault | `Reclaimed -> ()));
  run kern;
  check cb "hwMMU refused the DMA" true !refused;
  let v = ref 0 in
  for i = 0 to Prr_controller.prr_count z.Zynq.prrc - 1 do
    v := !v + Hw_mmu.violations (Prr_controller.prr z.Zynq.prrc i).Prr.hw_mmu
  done;
  check cb "violation recorded" true (!v > 0);
  check ci "no DMA job ran" 0 (Prr_controller.jobs_completed z.Zynq.prrc)

let test_unknown_task_rejected () =
  let _, kern, _ = boot_with_tasks [ Task_kind.Qam 4 ] in
  let result = ref (Ok ()) in
  guest kern "lost" (fun os ->
      match Hw_task_api.acquire os ~task:999 () with
      | Error e -> result := Error e
      | Ok _ -> ());
  run kern;
  check cb "bad task id surfaces an error" true (Result.is_error !result)

let test_irq_completion_mode () =
  let _, kern, ids = boot_with_tasks [ Task_kind.Qam 64 ] in
  let qam_id = List.hd ids in
  let got_irq_handle = ref false and job_ok = ref false in
  guest kern "irqy" (fun os ->
      match Hw_task_api.acquire os ~task:qam_id ~want_irq:true () with
      | Error e -> failwith e
      | Ok h ->
        got_irq_handle := h.Hw_task_api.irq <> None;
        let bits = Array.init 60 (fun i -> i land 1) in
        (match Hw_task_api.run_qam_mod os h ~order:64 ~bits with
         | Ok (i, q) -> job_ok := Qam.demodulate Qam.Qam64 ~i ~q = bits
         | Error e -> failwith e));
  run kern;
  check cb "PL irq attached" true !got_irq_handle;
  check cb "irq-mode job verified" true !job_ok

let test_release_frees_prr () =
  let _, kern, ids = boot_with_tasks [ Task_kind.Qam 4; Task_kind.Qam 16 ] in
  let a, b = (List.nth ids 0, List.nth ids 1) in
  let second_ok = ref false in
  guest kern "cycle" (fun os ->
      (* Acquire/release several times; PRRs must not leak. *)
      for _ = 1 to 6 do
        match Hw_task_api.acquire os ~task:a () with
        | Error e -> failwith e
        | Ok h -> Hw_task_api.release os h
      done;
      match Hw_task_api.acquire os ~task:b () with
      | Error e -> failwith e
      | Ok h ->
        second_ok := true;
        Hw_task_api.release os h);
  run kern;
  check cb "no PRR leak across acquire/release cycles" true !second_ok;
  check ci "no crash" 0 (Kernel.crashes kern)

let test_acquire_is_idempotent () =
  let _, kern, ids = boot_with_tasks [ Task_kind.Qam 4 ] in
  let id = List.hd ids in
  let prrs = ref [] in
  guest kern "twice" (fun os ->
      (match Hw_task_api.acquire os ~task:id () with
       | Ok h -> prrs := h.Hw_task_api.prr :: !prrs
       | Error e -> failwith e);
      match Hw_task_api.acquire os ~task:id () with
      | Ok h -> prrs := h.Hw_task_api.prr :: !prrs
      | Error e -> failwith e);
  run kern;
  (match !prrs with
   | [ Some p2; Some p1 ] -> check ci "same PRR handed back" p1 p2
   | _ -> Alcotest.fail "expected two successful acquisitions")

let test_fir_through_vm () =
  let _, kern, ids = boot_with_tasks [ Task_kind.Fir 63 ] in
  let fir_id = List.hd ids in
  let err = ref infinity in
  guest kern "fir" (fun os ->
      match Hw_task_api.acquire os ~task:fir_id ~want_irq:true () with
      | Error e -> failwith e
      | Ok h ->
        let n = 200 in
        let x =
          Array.init n (fun i ->
              sin (2.0 *. Float.pi *. 0.03 *. float_of_int i)
              +. sin (2.0 *. Float.pi *. 0.42 *. float_of_int i))
        in
        (match
           Hw_task_api.run_fir os h ~response:(Fir.Lowpass 0.125) ~samples:x
         with
         | Ok y ->
           let hcoef = Fir.design ~taps:63 (Fir.Lowpass 0.125) in
           let expect =
             Fir.apply hcoef
               (Array.map
                  (fun v -> Int32.float_of_bits (Int32.bits_of_float v))
                  x)
           in
           let e = ref 0.0 in
           Array.iteri
             (fun i v -> e := Float.max !e (Float.abs (v -. expect.(i))))
             y;
           err := !e
         | Error e -> failwith e);
        Hw_task_api.release os h);
  run kern;
  check cb "hardware FIR matches software" true (!err < 1e-3)

let test_native_and_virt_results_agree () =
  (* The same workload gives the same functional output natively and
     under virtualization (timing differs, data must not). *)
  let run_one make_port =
    let result = ref [||] in
    make_port (fun os fft_id ->
        match Hw_task_api.acquire os ~task:fft_id () with
        | Error e -> failwith e
        | Ok h ->
          let re = Array.init 256 (fun i -> sin (0.11 *. float_of_int i)) in
          let im = Array.make 256 0.0 in
          (match Hw_task_api.run_fft os h ~inverse:false ~re ~im with
           | Ok (hr, _) -> result := hr
           | Error e -> failwith e));
    !result
  in
  let native f =
    let sys = Port_native.create () in
    let id = Port_native.register_hw_task sys (Task_kind.Fft 256) in
    Port_native.run sys (fun port ->
        let os = Ucos.create port in
        ignore (Ucos.spawn os ~name:"m" ~prio:5 (fun () -> f os id));
        Ucos.run os)
  in
  let virt f =
    let z = Zynq.create () in
    let kern = Kernel.boot z in
    let id = Kernel.register_hw_task kern (Task_kind.Fft 256) in
    guest kern "vm" (fun os -> f os id);
    run kern
  in
  let rn = run_one native and rv = run_one virt in
  check cb "identical spectra" true (rn = rv && Array.length rn = 256)

let test_stream_fft_fastpath_identity () =
  (* The event-queue fastpath must not change a single cycle of the
     stage-accurate streaming-FFT pipeline — run the same SFFT job end
     to end with the fastpath on and off and compare final clocks. *)
  let run_one ~fast =
    let z = Zynq.create () in
    if not fast then Fastpath.set_enabled z.Zynq.fast false;
    let kern = Kernel.boot z in
    let id = Kernel.register_hw_task kern (Task_kind.Fft_stream 256) in
    guest kern "sfft" (fun os ->
        match Hw_task_api.acquire os ~task:id ~want_irq:true () with
        | Error e -> failwith e
        | Ok h ->
          let re = Array.init 256 (fun i -> cos (0.05 *. float_of_int i)) in
          let im = Array.make 256 0.0 in
          (match Hw_task_api.run_fft os h ~inverse:false ~re ~im with
           | Ok _ -> ()
           | Error e -> failwith e);
          Hw_task_api.release os h);
    run kern;
    (Clock.now z.Zynq.clock : Cycles.t)
  in
  let cf = run_one ~fast:true and cs = run_one ~fast:false in
  check cb "board made progress" true (cf > 0);
  check ci "fastpath on/off cycle-identical" cs cf

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "hw_task_api",
    [ t "fft through vm" test_fft_through_vm;
      t "qam poll mode" test_qam_poll_mode;
      t "reclaim between vms" test_reclaim_between_vms;
      t "hwmmu blocks escape" test_hwmmu_blocks_escape;
      t "unknown task rejected" test_unknown_task_rejected;
      t "irq completion mode" test_irq_completion_mode;
      t "release frees prr" test_release_frees_prr;
      t "acquire idempotent" test_acquire_is_idempotent;
      t "fir through vm" test_fir_through_vm;
      t "native and virt agree" test_native_and_virt_results_agree;
      t "stream fft fastpath identity" test_stream_fft_fastpath_identity ] )

(* Direct unit tests of the Hardware Task Manager's allocation logic
   (Fig 7), without a kernel or guests in the loop. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let setup ?prr_capacities ?partition () =
  let z = Zynq.create ?prr_capacities () in
  (* The manager's footprints run in a kernel-mapped address space. *)
  ignore (Kmem.create z);
  let hwtm = Hw_task_manager.create ?partition z in
  (z, hwtm)

let plain_client ?(id = 7) z =
  ignore z;
  { Hw_task_manager.client_id = id;
    data_window = (Address_map.guest_phys_base 0, 65536);
    map_iface = (fun _ -> Ok ());
    unmap_iface = (fun _ -> ());
    notify_irq = (fun _ _ -> ()) }

let settle z = ignore (Event_queue.advance_until z.Zynq.queue
                         (Clock.now z.Zynq.clock + Cycles.of_ms 30.0))

let test_register_builds_prr_lists () =
  let _, hwtm = setup () in
  let fft = Hw_task_manager.register_task hwtm (Task_kind.Fft 1024) in
  let qam = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  check cb "ids distinct" true (fft <> qam);
  check cb "kinds recorded" true
    (Hw_task_manager.task_kind hwtm fft = Some (Task_kind.Fft 1024));
  check (Alcotest.list ci) "both listed" [ fft; qam ]
    (Hw_task_manager.task_ids hwtm)

let test_capacity_gate () =
  (* A board whose PRRs are all too small for any FFT. *)
  let _, hwtm = setup ~prr_capacities:[ 200; 200 ] () in
  Alcotest.check_raises "no PRR can host it"
    (Failure "Hw_task_manager: no PRR can host FFT-1024") (fun () ->
        ignore (Hw_task_manager.register_task hwtm (Task_kind.Fft 1024)))

let test_request_unknown_task () =
  let z, hwtm = setup () in
  let r = Hw_task_manager.request hwtm (plain_client z) ~task:42 ~want_irq:false in
  check cb "bad task" true (r.Hw_task_manager.status = Hyper.Hw_bad_task)

let test_first_request_reconfigures () =
  let z, hwtm = setup () in
  let qam = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  let r =
    Hw_task_manager.request hwtm (plain_client z) ~task:qam ~want_irq:false
  in
  check cb "reconfig launched" true (r.Hw_task_manager.status = Hyper.Hw_reconfig);
  check ci "one reconfig" 1 (Hw_task_manager.reconfigs hwtm);
  check cb "pcap busy" true (Pcap.busy z.Zynq.pcap);
  settle z;
  let ready, consistent = Hw_task_manager.poll hwtm ~client_id:7 ~task:qam in
  check cb "ready after download" true ready;
  check cb "still consistent" true consistent

let test_prefers_already_loaded_prr () =
  let z, hwtm = setup () in
  let qam = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  let c1 = plain_client ~id:1 z in
  let r1 = Hw_task_manager.request hwtm c1 ~task:qam ~want_irq:false in
  settle z;
  ignore (Hw_task_manager.release hwtm ~client_id:1 ~task:qam);
  (* The next client asking for the same task must get the PRR that
     already holds the bitstream — no second download. *)
  let c2 = plain_client ~id:2 z in
  let r2 = Hw_task_manager.request hwtm c2 ~task:qam ~want_irq:false in
  check cb "second allocation instant" true
    (r2.Hw_task_manager.status = Hyper.Hw_success);
  check cb "same PRR reused" true (r1.Hw_task_manager.prr = r2.Hw_task_manager.prr);
  check ci "still one reconfig" 1 (Hw_task_manager.reconfigs hwtm)

let test_busy_when_pcap_occupied () =
  let z, hwtm = setup () in
  let q4 = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  let q16 = Hw_task_manager.register_task hwtm (Task_kind.Qam 16) in
  ignore
    (Hw_task_manager.request hwtm (plain_client ~id:1 z) ~task:q4
       ~want_irq:false);
  (* The second task needs a download too, but the channel is busy. *)
  let r =
    Hw_task_manager.request hwtm (plain_client ~id:2 z) ~task:q16
      ~want_irq:false
  in
  check cb "busy while PCAP occupied" true
    (r.Hw_task_manager.status = Hyper.Hw_busy)

let test_busy_when_all_prrs_claimed () =
  let z, hwtm = setup ~prr_capacities:[ 200 ] () in
  let q4 = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  let q16 = Hw_task_manager.register_task hwtm (Task_kind.Qam 16) in
  let prr = Prr_controller.prr z.Zynq.prrc 0 in
  ignore
    (Hw_task_manager.request hwtm (plain_client ~id:1 z) ~task:q4
       ~want_irq:false);
  settle z;
  (* Mark the region busy as if client 1's job were running: no idle
     PRR -> the paper's Busy status. *)
  prr.Prr.state <- Prr.Busy;
  let r =
    Hw_task_manager.request hwtm (plain_client ~id:2 z) ~task:q16
      ~want_irq:false
  in
  check cb "no idle PRR" true (r.Hw_task_manager.status = Hyper.Hw_busy);
  prr.Prr.state <- Prr.Ready

let test_reclaim_saves_consistency_block () =
  let z, hwtm = setup ~prr_capacities:[ 200 ] () in
  let qam = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  let unmapped = ref 0 in
  let w1 = Address_map.guest_phys_base 0 in
  let c1 =
    { (plain_client ~id:1 z) with
      Hw_task_manager.data_window = (w1, 4096);
      unmap_iface = (fun _ -> incr unmapped) }
  in
  ignore (Hw_task_manager.request hwtm c1 ~task:qam ~want_irq:false);
  settle z;
  (* Leave a recognisable register value to be saved. *)
  let prr = Prr_controller.prr z.Zynq.prrc 0 in
  Prr.write_reg prr Prr.Reg.len 1234l;
  check (Alcotest.option ci) "client recorded" (Some 1)
    (Hw_task_manager.prr_client hwtm 0);
  (* Client 2 steals the region (same task: no reconfig needed). *)
  let c2 =
    { (plain_client ~id:2 z) with
      Hw_task_manager.data_window = (Address_map.guest_phys_base 1, 4096) }
  in
  let r = Hw_task_manager.request hwtm c2 ~task:qam ~want_irq:false in
  check cb "instant success" true (r.Hw_task_manager.status = Hyper.Hw_success);
  check ci "old client demapped" 1 !unmapped;
  check ci "one reclaim" 1 (Hw_task_manager.reclaims hwtm);
  (* Client 1's data section carries the flag and the saved regs. *)
  check (Alcotest.int32) "inconsistent flag" 1l
    (Phys_mem.read_u32 z.Zynq.mem (w1 + Hw_task_manager.flag_offset));
  check (Alcotest.int32) "saved LEN register" 1234l
    (Phys_mem.read_u32 z.Zynq.mem
       (w1 + Hw_task_manager.saved_regs_offset + (4 * Prr.Reg.len)));
  (* The register file itself was scrubbed for the new client. *)
  check (Alcotest.int32) "registers scrubbed" 0l (Prr.read_reg prr Prr.Reg.len);
  let _, consistent1 = Hw_task_manager.poll hwtm ~client_id:1 ~task:qam in
  check cb "old client no longer holds it" false consistent1

let test_hwmmu_window_follows_client () =
  let z, hwtm = setup ~prr_capacities:[ 200 ] () in
  let qam = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  let prr = Prr_controller.prr z.Zynq.prrc 0 in
  let w1 = Address_map.guest_phys_base 0 and w2 = Address_map.guest_phys_base 1 in
  let c1 = { (plain_client ~id:1 z) with Hw_task_manager.data_window = (w1, 4096) } in
  ignore (Hw_task_manager.request hwtm c1 ~task:qam ~want_irq:false);
  settle z;
  check cb "window is client 1's" true
    (Hw_mmu.window prr.Prr.hw_mmu = Some (w1, 4096));
  let c2 = { (plain_client ~id:2 z) with Hw_task_manager.data_window = (w2, 8192) } in
  ignore (Hw_task_manager.request hwtm c2 ~task:qam ~want_irq:false);
  check cb "window reloaded for client 2" true
    (Hw_mmu.window prr.Prr.hw_mmu = Some (w2, 8192))

let test_release_requires_holder () =
  let z, hwtm = setup () in
  let qam = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  ignore
    (Hw_task_manager.request hwtm (plain_client ~id:1 z) ~task:qam
       ~want_irq:false);
  check cb "stranger cannot release" true
    (Result.is_error (Hw_task_manager.release hwtm ~client_id:9 ~task:qam));
  check cb "holder can" true
    (Result.is_ok (Hw_task_manager.release hwtm ~client_id:1 ~task:qam))

let test_pcap_client_tracked () =
  let z, hwtm = setup () in
  let qam = Hw_task_manager.register_task hwtm (Task_kind.Qam 16) in
  ignore
    (Hw_task_manager.request hwtm (plain_client ~id:5 z) ~task:qam
       ~want_irq:false);
  check (Alcotest.option ci) "completion IRQ routed to the requester"
    (Some 5)
    (Hw_task_manager.pcap_client hwtm)

(* Regression: a refused registration must leave the manager exactly
   as it was — no id burned, no table entry, no store space lost. The
   old code bumped the id counter and allocated store space before the
   suitability check, then failwith'd. *)
let test_register_failure_mutation_free () =
  let _, hwtm = setup ~prr_capacities:[ 200; 200 ] () in
  let q = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  (match Hw_task_manager.try_register_task hwtm (Task_kind.Fft 1024) with
   | Ok _ -> Alcotest.fail "FFT-1024 must not fit a 200-unit board"
   | Error m ->
     check Alcotest.string "capacity message"
       "Hw_task_manager: no PRR can host FFT-1024" m);
  check (Alcotest.list ci) "table untouched" [ q ]
    (Hw_task_manager.task_ids hwtm);
  check cb "bad kind refused without raising" true
    (Result.is_error
       (Hw_task_manager.try_register_task hwtm (Task_kind.Qam 5)));
  check (Alcotest.list ci) "table still untouched" [ q ]
    (Hw_task_manager.task_ids hwtm);
  (* Neither failure burned a task id. *)
  let q2 = Hw_task_manager.register_task hwtm (Task_kind.Qam 16) in
  check ci "next id sequential" (q + 1) q2

(* Regression: fill the bitstream store to refusal, then verify the
   failure mutated nothing and that destroying a task recycles its
   range. *)
let test_store_full_then_recycle () =
  let _, hwtm = setup () in
  (* SFFT-8192 bitstreams are 670 KB: the store fills after a few
     dozen registrations. *)
  let ids = ref [] in
  let full = ref None in
  while !full = None do
    match
      Hw_task_manager.try_register_task hwtm (Task_kind.Fft_stream 8192)
    with
    | Ok id -> ids := id :: !ids
    | Error m -> full := Some m
  done;
  let n = List.length !ids in
  check cb "store filled after a few dozen" true (n > 20 && n < 100);
  check (Alcotest.option Alcotest.string) "store-full error"
    (Some "Hw_task_manager: bitstream store full") !full;
  check ci "failure registered nothing" n
    (List.length (Hw_task_manager.task_ids hwtm));
  let highest = List.hd !ids in
  (* Recycle one range: registration works again, with a fresh id —
     ids are never reused, so stale loaded copies stay harmless. *)
  (match Hw_task_manager.destroy_task hwtm (List.nth !ids (n - 1)) with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  (match
     Hw_task_manager.try_register_task hwtm (Task_kind.Fft_stream 8192)
   with
   | Ok id -> check cb "ids never reused" true (id > highest)
   | Error m -> Alcotest.fail m)

let test_destroy_guards () =
  let z, hwtm = setup () in
  check cb "unknown destroy refused" true
    (Result.is_error (Hw_task_manager.destroy_task hwtm 999));
  let qam = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  ignore
    (Hw_task_manager.request hwtm (plain_client ~id:1 z) ~task:qam
       ~want_irq:false);
  settle z;
  check cb "task is held" true (Hw_task_manager.task_allocated hwtm qam);
  check cb "held task cannot be destroyed" true
    (Result.is_error (Hw_task_manager.destroy_task hwtm qam));
  ignore (Hw_task_manager.release hwtm ~client_id:1 ~task:qam);
  check cb "released task destroys" true
    (Result.is_ok (Hw_task_manager.destroy_task hwtm qam));
  check (Alcotest.list ci) "table empty" []
    (Hw_task_manager.task_ids hwtm)

let test_static_partition_denies_foreign () =
  let z, hwtm = setup ~partition:Hw_task_manager.Static () in
  check cb "mode recorded" true
    (Hw_task_manager.partition hwtm = Hw_task_manager.Static);
  let qam = Hw_task_manager.register_task hwtm (Task_kind.Qam 4) in
  (* Nothing pinned yet: every request fails fast. *)
  let r0 =
    Hw_task_manager.request hwtm (plain_client ~id:2 z) ~task:qam
      ~want_irq:false
  in
  check cb "unpinned board denies" true
    (r0.Hw_task_manager.status = Hyper.Hw_denied);
  check Alcotest.string "denied status name" "denied"
    (Hyper.hw_status_name Hyper.Hw_denied);
  check cb "pin out of range refused" true
    (Result.is_error
       (Hw_task_manager.pin_prr hwtm ~prr_id:99 ~client_id:1));
  for i = 0 to Prr_controller.prr_count z.Zynq.prrc - 1 do
    match Hw_task_manager.pin_prr hwtm ~prr_id:i ~client_id:1 with
    | Ok () -> ()
    | Error m -> Alcotest.fail m
  done;
  check (Alcotest.option ci) "owner readable" (Some 1)
    (Hw_task_manager.pinned_client hwtm 0);
  let r2 =
    Hw_task_manager.request hwtm (plain_client ~id:2 z) ~task:qam
      ~want_irq:false
  in
  check cb "foreign request denied" true
    (r2.Hw_task_manager.status = Hyper.Hw_denied);
  let r1 =
    Hw_task_manager.request hwtm (plain_client ~id:1 z) ~task:qam
      ~want_irq:false
  in
  check cb "owner request proceeds" true
    (r1.Hw_task_manager.status = Hyper.Hw_reconfig)

let test_dynamic_is_default () =
  let _, hwtm = setup () in
  check cb "default mode dynamic" true
    (Hw_task_manager.partition hwtm = Hw_task_manager.Dynamic)

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "hw_task_manager",
    [ t "register builds prr lists" test_register_builds_prr_lists;
      t "capacity gate" test_capacity_gate;
      t "unknown task" test_request_unknown_task;
      t "first request reconfigures" test_first_request_reconfigures;
      t "prefers loaded prr" test_prefers_already_loaded_prr;
      t "busy when pcap occupied" test_busy_when_pcap_occupied;
      t "busy when all claimed" test_busy_when_all_prrs_claimed;
      t "reclaim consistency block" test_reclaim_saves_consistency_block;
      t "hwmmu follows client" test_hwmmu_window_follows_client;
      t "release requires holder" test_release_requires_holder;
      t "pcap client tracked" test_pcap_client_tracked;
      t "register failure mutation-free" test_register_failure_mutation_free;
      t "store full then recycle" test_store_full_then_recycle;
      t "destroy guards" test_destroy_guards;
      t "static partition denies foreign" test_static_partition_denies_foreign;
      t "dynamic is default" test_dynamic_is_default ] )

(* Integration tests: guests running under the Mini-NOVA kernel. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let boot ?config () =
  let z = Zynq.create () in
  (z, Kernel.boot ?config z)

let run_to_completion kern =
  Kernel.run kern ~until:(Cycles.of_ms 5000.0)

(* A VM whose body is plain effect-performing code (no uCOS). *)

let test_hello_vm () =
  let z, kern = boot () in
  ignore
    (Kernel.create_vm kern ~name:"hello" (fun _env ->
         match Hyper.hypercall (Hyper.Uart_write "hi from PL0\n") with
         | Hyper.R_unit -> ()
         | r -> failwith (Format.asprintf "%a" Hyper.pp_response r)));
  run_to_completion kern;
  check Alcotest.string "guest output" "hi from PL0\n" (Uart.contents z.Zynq.uart);
  check ci "no crashes" 0 (Kernel.crashes kern);
  check ci "guest dead" 0 (Kernel.alive_guests kern)

let test_guest_memory_access () =
  let z, kern = boot () in
  let seen = ref 0l in
  ignore
    (Kernel.create_vm kern ~name:"mem" (fun env ->
         let va = Guest_layout.user_base + 0x1000 in
         Zynq.vwrite_u32 env.Kernel.env_zynq ~priv:false va 0xC0FFEEl;
         seen := Zynq.vread_u32 env.Kernel.env_zynq ~priv:false va));
  run_to_completion kern;
  check (Alcotest.int32) "guest RAM roundtrip" 0xC0FFEEl !seen;
  check ci "no crashes" 0 (Kernel.crashes kern);
  ignore z

let test_guest_cannot_touch_kernel () =
  let _, kern = boot () in
  let outcome = ref "none" in
  ignore
    (Kernel.create_vm kern ~name:"evil" (fun env ->
         try
           ignore
             (Zynq.vread_u32 env.Kernel.env_zynq ~priv:false
                Address_map.kernel_code_base);
           outcome := "read kernel!"
         with Mmu.Fault (Mmu.Permission_fault _) -> outcome := "faulted"));
  run_to_completion kern;
  check Alcotest.string "kernel protected from PL0" "faulted" !outcome

let test_crashing_guest_is_isolated () =
  let z, kern = boot () in
  ignore
    (Kernel.create_vm kern ~name:"crasher" (fun _ -> failwith "boom"));
  ignore
    (Kernel.create_vm kern ~name:"survivor" (fun _ ->
         for _ = 1 to 5 do
           ignore (Hyper.pause ())
         done;
         ignore (Hyper.hypercall (Hyper.Uart_write "alive\n"))));
  run_to_completion kern;
  check ci "one crash recorded" 1 (Kernel.crashes kern);
  check Alcotest.string "other guest unaffected" "alive\n"
    (Uart.contents z.Zynq.uart)

let test_sd_hypercalls () =
  let _, kern = boot () in
  let got = ref Bytes.empty in
  ignore
    (Kernel.create_vm kern ~name:"sd" (fun _ ->
         let data = Bytes.make Sd_card.block_size 'q' in
         (match Hyper.hypercall (Hyper.Sd_write { block = 7; data }) with
          | Hyper.R_unit -> ()
          | _ -> failwith "write failed");
         match Hyper.hypercall (Hyper.Sd_read { block = 7 }) with
         | Hyper.R_bytes b -> got := b
         | _ -> failwith "read failed"));
  run_to_completion kern;
  check cb "block roundtrip" true (!got = Bytes.make Sd_card.block_size 'q')

let test_priv_reg_and_trap_agree () =
  let _, kern = boot () in
  let ok = ref false in
  ignore
    (Kernel.create_vm kern ~name:"regs" (fun _ ->
         let via_hyper =
           match Hyper.hypercall (Hyper.Priv_reg_read Hyper.Reg_cpuid) with
           | Hyper.R_int v -> v
           | _ -> -1
         in
         let via_trap = Hyper.und_trap (Hyper.Mrc Hyper.Reg_cpuid) in
         ok := via_hyper = via_trap && via_hyper = 0x410FC090));
  run_to_completion kern;
  check cb "MIDR via both paths" true !ok

let test_und_trap_costs_more_than_hypercall () =
  let z, kern = boot () in
  let hyper_cost = ref 0 and trap_cost = ref 0 in
  ignore
    (Kernel.create_vm kern ~name:"costs" (fun _ ->
         let t0 = Clock.now z.Zynq.clock in
         ignore (Hyper.hypercall (Hyper.Priv_reg_read Hyper.Reg_counter));
         hyper_cost := Clock.now z.Zynq.clock - t0;
         let t1 = Clock.now z.Zynq.clock in
         ignore (Hyper.und_trap (Hyper.Mrc Hyper.Reg_counter));
         trap_cost := Clock.now z.Zynq.clock - t1));
  run_to_completion kern;
  check cb "both charged" true (!hyper_cost > 0 && !trap_cost > 0)

let test_vtimer_delivers_ticks () =
  let _, kern = boot () in
  let ticks = ref 0 in
  ignore
    (Kernel.create_vm kern ~name:"ticker" (fun _ ->
         ignore (Hyper.hypercall (Hyper.Irq_enable Irq_id.private_timer));
         ignore
           (Hyper.hypercall
              (Hyper.Vtimer_config { interval = Cycles.of_ms 1.0 }));
         while !ticks < 5 do
           let r = Hyper.idle () in
           List.iter
             (fun irq -> if irq = Irq_id.private_timer then incr ticks)
             r.Hyper.virqs
         done;
         ignore (Hyper.hypercall Hyper.Vtimer_stop)));
  run_to_completion kern;
  check ci "five ticks" 5 !ticks

let test_ipc_between_vms () =
  let _, kern = boot () in
  let received = ref None in
  let receiver =
    Kernel.create_vm kern ~name:"rx" (fun _ ->
        ignore (Hyper.hypercall (Hyper.Irq_enable Kernel.ipc_doorbell_irq));
        let rec wait () =
          match Hyper.hypercall Hyper.Vm_recv with
          | Hyper.R_msg (Some (sender, payload)) ->
            received := Some (sender, payload)
          | Hyper.R_msg None ->
            ignore (Hyper.idle ());
            wait ()
          | _ -> failwith "recv failed"
        in
        wait ())
  in
  let sender =
    Kernel.create_vm kern ~name:"tx" (fun _ ->
        for _ = 1 to 3 do
          ignore (Hyper.pause ())
        done;
        match
          Hyper.hypercall
            (Hyper.Vm_send
               { dest = receiver.Pd.id; payload = [| 4; 5; 6 |] })
        with
        | Hyper.R_unit -> ()
        | r -> failwith (Format.asprintf "send: %a" Hyper.pp_response r))
  in
  run_to_completion kern;
  (match !received with
   | Some (src, payload) ->
     check ci "sender id" sender.Pd.id src;
     check cb "payload" true (payload = [| 4; 5; 6 |])
   | None -> Alcotest.fail "message never arrived")

let test_round_robin_fairness () =
  (* Two equal-priority CPU-bound VMs must share time ~equally under
     the paper's round-robin (33 ms quantum -> shrink for the test). *)
  let config =
    { Kernel.default_config with Kernel.quantum = Cycles.of_ms 2.0 }
  in
  let z, kern = boot ~config () in
  let work = [| 0; 0 |] in
  let body i (_ : Kernel.guest_env) =
    let fp =
      { Exec.label = "spin";
        code = { Exec.base = Ucos_layout.os_code_base; len = 128 };
        reads = [];
        writes = [];
        base_cycles = 5000 }
    in
    while Clock.now z.Zynq.clock < Cycles.of_ms 60.0 do
      ignore (Exec.run z ~priv:false fp);
      work.(i) <- work.(i) + 1;
      ignore (Hyper.pause ())
    done
  in
  ignore (Kernel.create_vm kern ~name:"a" (body 0));
  ignore (Kernel.create_vm kern ~name:"b" (body 1));
  Kernel.run kern ~until:(Cycles.of_ms 80.0);
  let a = float_of_int work.(0) and b = float_of_int work.(1) in
  check cb "both ran" true (a > 0.0 && b > 0.0);
  check cb
    (Printf.sprintf "fair shares (a=%.0f b=%.0f)" a b)
    true
    (Float.abs (a -. b) /. Float.max a b < 0.2)

let test_priority_preemption () =
  (* A higher-priority VM that wakes on its virtual timer preempts the
     lower-priority CPU hog at the next chunk boundary. *)
  let z, kern = boot () in
  let rt_activations = ref 0 in
  let hog_running = ref true in
  ignore
    (Kernel.create_vm kern ~name:"rt" ~priority:3 (fun _ ->
         ignore (Hyper.hypercall (Hyper.Irq_enable Irq_id.private_timer));
         ignore
           (Hyper.hypercall
              (Hyper.Vtimer_config { interval = Cycles.of_ms 5.0 }));
         while !rt_activations < 4 do
           let r = Hyper.idle () in
           if List.mem Irq_id.private_timer r.Hyper.virqs then
             incr rt_activations
         done;
         ignore (Hyper.hypercall Hyper.Vtimer_stop)));
  ignore
    (Kernel.create_vm kern ~name:"hog" ~priority:1 (fun _ ->
         let fp =
           { Exec.label = "hog";
             code = { Exec.base = Ucos_layout.os_code_base; len = 128 };
             reads = [];
             writes = [];
             base_cycles = 3000 }
         in
         while !hog_running do
           ignore (Exec.run z ~priv:false fp);
           ignore (Hyper.pause ())
         done));
  Kernel.run kern ~until:(Cycles.of_ms 60.0);
  hog_running := false;
  check ci "rt VM activated by timer despite the hog" 4 !rt_activations

let test_quantum_preservation () =
  (* Preempted VMs keep their remaining quantum (paper §III-D):
     exercised implicitly by the preemption test; here we check the
     bookkeeping directly. *)
  let _, kern = boot () in
  let pd =
    Kernel.create_vm kern ~name:"q" (fun _ ->
        for _ = 1 to 3 do
          ignore (Hyper.pause ())
        done)
  in
  check cb "quantum initialised" true (pd.Pd.quantum_left = pd.Pd.quantum);
  run_to_completion kern;
  check cb "vm finished" true (pd.Pd.state = Pd.Dead)

let test_guest_mode_switch_protects () =
  (* Set_guest_mode Gm_user makes domain-1 (guest kernel) pages
     inaccessible — Table II. *)
  let _, kern = boot () in
  let outcome = ref "none" in
  ignore
    (Kernel.create_vm kern ~name:"modes" (fun env ->
         let z = env.Kernel.env_zynq in
         let kva = Guest_layout.kernel_base + 0x100 in
         Zynq.vwrite_u32 z ~priv:false kva 99l;
         ignore (Hyper.hypercall (Hyper.Set_guest_mode Hyper.Gm_user));
         (try ignore (Zynq.vread_u32 z ~priv:false kva) with
          | Mmu.Fault (Mmu.Domain_fault _) -> outcome := "protected");
         ignore (Hyper.hypercall (Hyper.Set_guest_mode Hyper.Gm_kernel));
         if Zynq.vread_u32 z ~priv:false kva = 99l && !outcome = "protected"
         then outcome := "ok"));
  run_to_completion kern;
  check Alcotest.string "DACR guest-kernel protection" "ok" !outcome

let test_map_insert_remove () =
  let _, kern = boot () in
  let ok = ref false in
  ignore
    (Kernel.create_vm kern ~name:"mapper" (fun env ->
         let z = env.Kernel.env_zynq in
         let va = Guest_layout.page_region_base + 0x40000 in
         (match
            Hyper.hypercall
              (Hyper.Map_insert
                 { vaddr = va; gphys_off = 0x0060_0000; user = true })
          with
          | Hyper.R_unit -> ()
          | r -> failwith (Format.asprintf "map: %a" Hyper.pp_response r));
         Zynq.vwrite_u32 z ~priv:false va 0x5Al;
         let v = Zynq.vread_u32 z ~priv:false va in
         (* The same memory is visible through the linear alias. *)
         let alias = Guest_layout.kernel_base + 0x0060_0000 in
         let v' = Zynq.vread_u32 z ~priv:false alias in
         (match Hyper.hypercall (Hyper.Map_remove { vaddr = va }) with
          | Hyper.R_unit -> ()
          | _ -> failwith "unmap failed");
         let faulted =
           try
             ignore (Zynq.vread_u32 z ~priv:false va);
             false
           with Mmu.Fault (Mmu.Translation_fault _) -> true
         in
         ok := v = 0x5Al && v' = 0x5Al && faulted));
  run_to_completion kern;
  check cb "map/alias/unmap" true !ok;
  check ci "no crashes" 0 (Kernel.crashes kern)

let test_hypercalls_are_counted () =
  let _, kern = boot () in
  ignore
    (Kernel.create_vm kern ~name:"counter" (fun _ ->
         for _ = 1 to 7 do
           ignore (Hyper.hypercall (Hyper.Priv_reg_read Hyper.Reg_counter))
         done));
  run_to_completion kern;
  check ci "count" 7 (Kernel.hypercalls kern)

let test_trace_records_ordered_events () =
  let z, kern = boot () in
  ignore z;
  let tr = Ktrace.create ~capacity:256 in
  Kernel.set_trace kern (Some tr);
  ignore
    (Kernel.create_vm kern ~name:"traced" (fun _ ->
         ignore (Hyper.hypercall (Hyper.Uart_write "x"))));
  run_to_completion kern;
  let events = Ktrace.events tr in
  check cb "events recorded" true (List.length events >= 3);
  (* Timestamps are monotone. *)
  let rec mono = function
    | a :: (b :: _ as rest) ->
      check cb "monotone timestamps" true (b.Ktrace.at >= a.Ktrace.at);
      mono rest
    | _ -> ()
  in
  mono events;
  let tags = List.map (fun e -> (e.Ktrace.category, e.Ktrace.name)) events in
  check cb "has a vm switch" true (List.mem ("sched", "vm-switch") tags);
  check cb "has the hypercall" true (List.mem ("hyper", "uart_write") tags);
  check cb "has the death" true (List.mem ("sched", "vm-dead") tags);
  (* find/count agree with the raw event list. *)
  check ci "count = |find|"
    (List.length (Ktrace.find tr ~category:"hyper" ()))
    (Ktrace.count tr ~category:"hyper" ());
  check cb "count finds the hypercall" true
    (Ktrace.count tr ~category:"hyper" ~name:"uart_write" () >= 1)

let test_trace_ring_bounds () =
  let tr = Ktrace.create ~capacity:4 in
  for i = 1 to 10 do
    Ktrace.record tr i ~category:"mark" ~name:"mark"
      [ ("text", Ktrace.Str (string_of_int i)) ]
  done;
  check ci "bounded" 4 (List.length (Ktrace.events tr));
  check ci "drops counted" 6 (Ktrace.dropped tr);
  (match Ktrace.events tr with
   | { Ktrace.fields = [ ("text", Ktrace.Str m) ]; _ } :: _ ->
     check Alcotest.string "keeps the most recent" "7" m
   | _ -> Alcotest.fail "expected mark");
  (* The legacy closed-variant shim still records. *)
  Ktrace.record_kind tr 11 (Ktrace.Mark "legacy");
  (match List.rev (Ktrace.events tr) with
   | { Ktrace.category = "mark"; fields = [ ("text", Ktrace.Str m) ]; _ } :: _
     ->
     check Alcotest.string "shim recorded" "legacy" m
   | _ -> Alcotest.fail "expected shim mark");
  Ktrace.clear tr;
  check ci "cleared" 0 (List.length (Ktrace.events tr))

let test_ucos_tick_catchup_across_deschedule () =
  (* A descheduled guest receives coalesced virtual-timer interrupts;
     the port's tick recovery must keep its OS time tracking wall
     time (within one rotation of the 4 ms quantum used here). *)
  let config =
    { Kernel.default_config with Kernel.quantum = Cycles.of_ms 4.0 }
  in
  let z, kern = boot ~config () in
  let wall_ms = ref 0.0 and os_ticks = ref 0 in
  ignore
    (Kernel.create_vm kern ~name:"sleeper" (fun genv ->
         let os = Ucos.create (Port.paravirt genv) in
         ignore
           (Ucos.spawn os ~name:"s" ~prio:5 (fun () ->
                Ucos.delay os 40;
                os_ticks := Ucos.ticks os;
                wall_ms := Cycles.to_ms (Clock.now z.Zynq.clock);
                Ucos.stop os));
         Ucos.run os));
  (* A CPU hog competing for the other slices. *)
  ignore
    (Kernel.create_vm kern ~name:"hog" (fun genv ->
         let fp =
           { Exec.label = "hog";
             code = { Exec.base = Ucos_layout.app_code_base; len = 256 };
             reads = [];
             writes = [];
             base_cycles = 8000 }
         in
         while Clock.now z.Zynq.clock < Cycles.of_ms 120.0 do
           ignore (Exec.run genv.Kernel.env_zynq ~priv:false fp);
           ignore (Hyper.pause ())
         done));
  Kernel.run kern ~until:(Cycles.of_ms 150.0);
  check cb "woke up" true (!os_ticks >= 40);
  check cb
    (Printf.sprintf "wall time ~40 ms despite sharing (got %.1f)" !wall_ms)
    true
    (!wall_ms >= 40.0 && !wall_ms < 50.0)

let test_two_ucos_vms_ipc () =
  let z, kern = boot () in
  ignore z;
  let got = ref [] in
  let rx =
    Kernel.create_vm kern ~name:"rx" (fun genv ->
        let os = Ucos.create (Port.paravirt genv) in
        let port = Ucos.port os in
        ignore
          (Ucos.spawn os ~name:"r" ~prio:5 (fun () ->
               let remaining = ref 3 in
               while !remaining > 0 do
                 match port.Port.recv () with
                 | Some (_, payload) ->
                   got := Array.to_list payload :: !got;
                   decr remaining
                 | None -> Ucos.delay os 1
               done;
               Ucos.stop os));
        Ucos.run os)
  in
  ignore
    (Kernel.create_vm kern ~name:"tx" (fun genv ->
         let os = Ucos.create (Port.paravirt genv) in
         let port = Ucos.port os in
         ignore
           (Ucos.spawn os ~name:"t" ~prio:5 (fun () ->
                for i = 1 to 3 do
                  (match port.Port.send ~dest:rx.Pd.id [| i; i * i |] with
                   | Hyper.R_unit -> ()
                   | _ -> failwith "send failed");
                  Ucos.delay os 1
                done;
                Ucos.stop os));
         Ucos.run os));
  run_to_completion kern;
  check cb "all frames arrived in order" true
    (List.rev !got = [ [ 1; 1 ]; [ 2; 4 ]; [ 3; 9 ] ])

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "kernel",
    [ t "hello vm" test_hello_vm;
      t "guest memory access" test_guest_memory_access;
      t "guest cannot touch kernel" test_guest_cannot_touch_kernel;
      t "crashing guest isolated" test_crashing_guest_is_isolated;
      t "sd hypercalls" test_sd_hypercalls;
      t "priv reg and trap agree" test_priv_reg_and_trap_agree;
      t "trap and hypercall charged" test_und_trap_costs_more_than_hypercall;
      t "vtimer ticks" test_vtimer_delivers_ticks;
      t "ipc between vms" test_ipc_between_vms;
      t "round robin fairness" test_round_robin_fairness;
      t "priority preemption" test_priority_preemption;
      t "quantum bookkeeping" test_quantum_preservation;
      t "guest mode protection" test_guest_mode_switch_protects;
      t "map insert/remove" test_map_insert_remove;
      t "hypercalls counted" test_hypercalls_are_counted;
      t "trace ordered events" test_trace_records_ordered_events;
      t "trace ring bounds" test_trace_ring_bounds;
      t "ucos tick catchup" test_ucos_tick_catchup_across_deschedule;
      t "two ucos vms ipc" test_two_ucos_vms_ipc ] )

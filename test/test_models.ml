(* Model-based property tests: random operation sequences executed
   against both the real component and a trivially-correct reference
   model, then compared. These catch state-machine bugs that
   example-based tests miss. *)

let cb = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Event queue vs a sorted association list.                           *)

type eq_op =
  | Eq_schedule of int   (* delay *)
  | Eq_cancel of int     (* index into scheduled ids *)
  | Eq_advance of int    (* time step *)

let gen_eq_ops =
  QCheck2.Gen.(
    list_size (int_range 1 60)
      (oneof
         [ map (fun d -> Eq_schedule (d land 0xFF)) int;
           map (fun i -> Eq_cancel (abs i)) int;
           map (fun d -> Eq_advance (1 + (d land 0x3F))) int ]))

(* Runs an op sequence against both the real queue and the model.
   Besides the firing order, every step compares the pending count
   (which caught a live-counter undercount on cancel-after-fire) and
   requires [Event_queue.self_check] to stay clean. *)
let eq_model_holds ops =
  let clock = Clock.create () in
  let q = Event_queue.create clock in
  let fired_real = ref [] in
  let fired_model = ref [] in
  (* model: (time, tag, cancelled ref) in insertion order *)
  let model = ref [] in
  let handles = ref [] in
  let next_tag = ref 0 in
  let ok = ref true in
  List.iter
    (fun op ->
       (match op with
        | Eq_schedule d ->
          let tag = !next_tag in
          incr next_tag;
          let id =
            Event_queue.schedule_after q d (fun () ->
                fired_real := tag :: !fired_real)
          in
          let cancelled = ref false in
          model := !model @ [ (Clock.now clock + d, tag, cancelled) ];
          handles := !handles @ [ (id, cancelled) ]
        | Eq_cancel i ->
          if !handles <> [] then begin
            let id, cancelled = List.nth !handles (i mod List.length !handles) in
            Event_queue.cancel q id;
            (* cancel after the event fired (it left the model) is a
               no-op; marking the ref is harmless either way *)
            cancelled := true
          end
        | Eq_advance d ->
          let target = Clock.now clock + d in
          (* model: fire due, stable by (time, insertion order) *)
          let due, rest =
            List.partition (fun (t, _, _) -> t <= target) !model
          in
          let due =
            List.stable_sort (fun (t1, g1, _) (t2, g2, _) ->
                compare (t1, g1) (t2, g2))
              due
          in
          List.iter
            (fun (_, tag, cancelled) ->
               if not !cancelled then fired_model := tag :: !fired_model)
            due;
          model := rest;
          ignore (Event_queue.advance_until q target));
       let model_pending =
         List.length (List.filter (fun (_, _, c) -> not !c) !model)
       in
       if Event_queue.pending q <> model_pending then ok := false;
       if Event_queue.self_check q <> [] then ok := false)
    ops;
  !ok && List.rev !fired_real = List.rev !fired_model

let prop_event_queue_model =
  QCheck2.Test.make ~name:"Event_queue matches sorted-list model" ~count:200
    gen_eq_ops eq_model_holds

(* ------------------------------------------------------------------ *)
(* Cache vs an explicit per-set LRU list model.                        *)

type cache_op = C_access of int * bool | C_inval of int | C_clean of int

let gen_cache_ops =
  QCheck2.Gen.(
    list_size (int_range 1 120)
      (oneof
         [ map2 (fun a w -> C_access ((a land 0x3F) * 32, w)) int bool;
           map (fun a -> C_inval ((a land 0x3F) * 32)) int;
           map (fun a -> C_clean ((a land 0x3F) * 32)) int ]))

(* Reference: per set, a list of (line_addr, dirty) in LRU order
   (head = least recent). *)
module Cache_model = struct
  type t = {
    sets : int;
    ways : int;
    mutable state : (int * bool) list array;
  }

  let create ~sets ~ways = { sets; ways; state = Array.make sets [] }

  let set_of t la = la land (t.sets - 1)

  let access t la write =
    let s = set_of t la in
    let l = t.state.(s) in
    match List.assoc_opt la l with
    | Some dirty ->
      t.state.(s) <-
        List.filter (fun (a, _) -> a <> la) l @ [ (la, dirty || write) ];
      `Hit
    | None ->
      let l = if List.length l >= t.ways then List.tl l else l in
      t.state.(s) <- l @ [ (la, write) ];
      `Miss

  let probe t la = List.mem_assoc la t.state.(set_of t la)

  let dirty t la =
    match List.assoc_opt la t.state.(set_of t la) with
    | Some d -> d
    | None -> false

  let invalidate t la =
    let s = set_of t la in
    t.state.(s) <- List.filter (fun (a, _) -> a <> la) t.state.(s)

  let clean t la =
    let s = set_of t la in
    t.state.(s) <-
      List.map (fun (a, d) -> if a = la then (a, false) else (a, d)) t.state.(s)
end

let prop_cache_lru_model =
  QCheck2.Test.make ~name:"Cache matches per-set LRU model" ~count:300
    gen_cache_ops
    (fun ops ->
       (* 8 sets x 2 ways x 32 B lines = 512 B cache. *)
       let c =
         Cache.create
           { Cache.name = "model"; size_bytes = 512; ways = 2; line_size = 32 }
       in
       let m = Cache_model.create ~sets:8 ~ways:2 in
       List.for_all
         (fun op ->
            match op with
            | C_access (a, w) ->
              let r = Cache.access c a ~write:w in
              let rm = Cache_model.access m (a lsr 5) w in
              r = rm
            | C_inval a ->
              ignore (Cache.invalidate_range c a 32);
              Cache_model.invalidate m (a lsr 5);
              Cache.probe c a = Cache_model.probe m (a lsr 5)
            | C_clean a ->
              ignore (Cache.clean_range c a 32);
              Cache_model.clean m (a lsr 5);
              Cache.dirty_in_range c a 32 = Cache_model.dirty m (a lsr 5))
         ops)

(* ------------------------------------------------------------------ *)
(* Scheduler vs a list-of-rings model.                                 *)

type sched_op = S_enq of int | S_deq of int | S_rotate

let gen_sched_ops =
  QCheck2.Gen.(
    list_size (int_range 1 80)
      (oneof
         [ map (fun i -> S_enq (abs i mod 12)) int;
           map (fun i -> S_deq (abs i mod 12)) int;
           return S_rotate ]))

(* Besides pick-agreement after every op, the ring must pass its own
   structural integrity walk (closure, link symmetry, counts). *)
let sched_model_holds ops =
  let s = Sched.create () in
       let mem = Phys_mem.create () in
       let fa =
         Frame_alloc.create ~base:Address_map.kernel_data_base
           ~size:(2 lsl 20)
       in
       let pds =
         Array.init 12 (fun id ->
             let pt = Page_table.create mem fa in
             Pd.make ~id ~name:(string_of_int id) ~kind:Pd.Guest
               ~priority:(id mod 3) ~asid:(2 + id) ~pt ~phys_base:0
               ~quantum:100 ())
       in
       (* model: per priority, pd ids head-first *)
  let model = Array.make 3 [] in
  let model_pick () =
    let rec scan p = if p < 0 then None else
        match model.(p) with [] -> scan (p - 1) | h :: _ -> Some h
    in
    scan 2
  in
  List.for_all
    (fun op ->
       (match op with
        | S_enq i ->
          let pd = pds.(i) in
          Sched.enqueue s pd;
          let p = pd.Pd.priority in
          if not (List.mem i model.(p)) then model.(p) <- model.(p) @ [ i ]
        | S_deq i ->
          let pd = pds.(i) in
          Sched.dequeue s pd;
          let p = pd.Pd.priority in
          model.(p) <- List.filter (( <> ) i) model.(p)
        | S_rotate ->
          (match Sched.pick s with
           | Some pd ->
             Sched.rotate s pd;
             let p = pd.Pd.priority in
             (match model.(p) with
              | h :: t -> model.(p) <- t @ [ h ]
              | [] -> ())
           | None -> ()));
       let real = Option.map (fun p -> p.Pd.id) (Sched.pick s) in
       real = model_pick () && Sched.integrity s = [])
    ops

let prop_sched_model =
  QCheck2.Test.make ~name:"Sched matches list-of-rings model" ~count:300
    gen_sched_ops sched_model_holds

(* ------------------------------------------------------------------ *)
(* vGIC vs a set/queue model.                                          *)

type vgic_op =
  | V_register of int
  | V_enable of int
  | V_disable of int
  | V_pend of int
  | V_drain

let gen_vgic_ops =
  QCheck2.Gen.(
    list_size (int_range 1 80)
      (oneof
         [ map (fun i -> V_register (abs i mod 6)) int;
           map (fun i -> V_enable (abs i mod 6)) int;
           map (fun i -> V_disable (abs i mod 6)) int;
           map (fun i -> V_pend (abs i mod 6)) int;
           return V_drain ]))

let prop_vgic_model =
  QCheck2.Test.make ~name:"Vgic matches set/queue model" ~count:300
    gen_vgic_ops
    (fun ops ->
       let v = Vgic.create ~owner:0 in
       let registered = Hashtbl.create 8 in
       let enabled = Hashtbl.create 8 in
       let pending = ref [] (* arrival order *) in
       List.for_all
         (fun op ->
            match op with
            | V_register i ->
              Vgic.register v i;
              Hashtbl.replace registered i ();
              true
            | V_enable i ->
              if Hashtbl.mem registered i then begin
                Vgic.enable v i;
                Hashtbl.replace enabled i ();
                true
              end
              else true (* enable on unregistered raises; skip in model *)
            | V_disable i ->
              if Hashtbl.mem registered i then begin
                Vgic.disable v i;
                Hashtbl.remove enabled i;
                true
              end
              else true
            | V_pend i ->
              Vgic.set_pending v i;
              Hashtbl.replace registered i (); (* set_pending latches *)
              if not (List.mem i !pending) then pending := !pending @ [ i ];
              true
            | V_drain ->
              let expect =
                List.filter (fun i -> Hashtbl.mem enabled i) !pending
              in
              pending := List.filter (fun i -> not (Hashtbl.mem enabled i)) !pending;
              Vgic.drain v = expect)
         ops)

(* ------------------------------------------------------------------ *)
(* Page table vs a hashtable of mappings.                              *)

type pt_op = P_map of int * int | P_unmap of int

let gen_pt_ops =
  QCheck2.Gen.(
    list_size (int_range 1 60)
      (oneof
         [ map2 (fun v p -> P_map (abs v mod 24, abs p mod 64)) int int;
           map (fun v -> P_unmap (abs v mod 24)) int ]))

let prop_page_table_model =
  QCheck2.Test.make ~name:"Page_table matches mapping model" ~count:200
    gen_pt_ops
    (fun ops ->
       let mem = Phys_mem.create () in
       let fa =
         Frame_alloc.create ~base:Address_map.kernel_data_base
           ~size:(2 lsl 20)
       in
       let pt = Page_table.create mem fa in
       let model = Hashtbl.create 16 in
       let vbase = 0x0800_0000 and pbase = 0x0400_0000 in
       let ok = ref true in
       List.iter
         (fun op ->
            match op with
            | P_map (vi, pi) ->
              let virt = vbase + (vi * Addr.page_size) in
              let phys = pbase + (pi * Addr.page_size) in
              Page_table.map_page pt ~virt ~phys ~domain:2 ~ap:Pte.Ap_full
                ~global:false;
              Hashtbl.replace model vi pi
            | P_unmap vi ->
              let virt = vbase + (vi * Addr.page_size) in
              let existed = Page_table.unmap_page pt ~virt in
              if existed <> Hashtbl.mem model vi then ok := false;
              Hashtbl.remove model vi)
         ops;
       (* Final walk of every page agrees with the model. *)
       !ok
       && List.for_all
            (fun vi ->
               let virt = vbase + (vi * Addr.page_size) in
               let walked =
                 Page_table.walk ~read:(Phys_mem.read_u32 mem)
                   ~root:(Page_table.root pt) ~virt
               in
               match Hashtbl.find_opt model vi, walked with
               | None, None -> true
               | Some pi, Some (pa, _) -> pa = pbase + (pi * Addr.page_size)
               | _ -> false)
            (List.init 24 Fun.id))

(* ------------------------------------------------------------------ *)
(* Seeded runners: the same models driven by the repo's own splitmix
   generator over a fixed seed range, so a failure message carries the
   exact seed to replay (`seed N` below reproduces bit-for-bit).       *)

let eq_ops_of_seed seed =
  let rng = Rng.create ~seed in
  List.init
    (20 + Rng.int rng 60)
    (fun _ ->
       match Rng.int rng 3 with
       | 0 -> Eq_schedule (Rng.int rng 256)
       | 1 -> Eq_cancel (Rng.int rng 1024)
       | _ -> Eq_advance (1 + Rng.int rng 64))

let test_event_queue_seeded () =
  for seed = 1 to 50 do
    if not (eq_model_holds (eq_ops_of_seed seed)) then
      Alcotest.failf
        "event-queue model mismatch; replay with seed %d" seed
  done

let sched_ops_of_seed seed =
  let rng = Rng.create ~seed in
  List.init
    (20 + Rng.int rng 80)
    (fun _ ->
       match Rng.int rng 3 with
       | 0 -> S_enq (Rng.int rng 12)
       | 1 -> S_deq (Rng.int rng 12)
       | _ -> S_rotate)

let test_sched_seeded () =
  for seed = 1 to 50 do
    if not (sched_model_holds (sched_ops_of_seed seed)) then
      Alcotest.failf "sched model mismatch; replay with seed %d" seed
  done

let test_placeholder () = Alcotest.check cb "models loaded" true true

let suite =
  ( "models",
    [ QCheck_alcotest.to_alcotest prop_event_queue_model;
      QCheck_alcotest.to_alcotest prop_cache_lru_model;
      QCheck_alcotest.to_alcotest prop_sched_model;
      QCheck_alcotest.to_alcotest prop_vgic_model;
      QCheck_alcotest.to_alcotest prop_page_table_model;
      Alcotest.test_case "event-queue model, seeded runner" `Quick
        test_event_queue_seeded;
      Alcotest.test_case "sched model, seeded runner" `Quick
        test_sched_seeded;
      Alcotest.test_case "placeholder" `Quick test_placeholder ] )

(* The observability plane (lib/obs) and its kernel integration.

   Three layers: registry unit tests (counters / gauges / histograms /
   spans / meters and their invariants), whole-system invariants on a
   chaos run with the plane enabled (span balance across VM kills and
   quarantines, monotone counters, histogram consistency), and the
   headline promise — enabling observability does not move a single
   simulated cycle (mirrors the fastpath equivalence suite).

   Also pins the Hyper ABI enumeration and the total response
   serializer that ride along in this PR. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

(* --- registry --- *)

let test_counters_and_gauges () =
  let t = Obs.create () in
  let c = Obs.counter t "reqs" in
  Obs.incr c;
  Obs.add c 4;
  check ci "counter accumulates" 5 (Obs.counter_value c);
  check ci "interned by name" 5 (Obs.counter_value (Obs.counter t "reqs"));
  check cb "counters are monotonic" true
    (raises_invalid (fun () -> Obs.add c (-1)));
  let g = Obs.gauge t "level" in
  Obs.set_gauge g 7;
  Obs.set_gauge g 3;
  check ci "gauge holds the last value" 3 (Obs.gauge_value g);
  let s = Obs.snapshot t in
  check cb "snapshot lists them" true
    (List.mem_assoc "reqs" s.Obs.s_counters
     && List.mem_assoc "level" s.Obs.s_gauges)

let test_histogram_invariants () =
  check ci "bucket 0 absorbs non-positive" 0 (Obs.bucket_of 0);
  check ci "bucket of 1" 1 (Obs.bucket_of 1);
  check cb "buckets are monotone in value" true
    (Obs.bucket_of 100 <= Obs.bucket_of 10_000);
  check cb "huge values stay in range" true
    (Obs.bucket_of max_int < Obs.log2_buckets);
  let t = Obs.create () in
  let h = Obs.histogram t "lat" in
  let values = [ 0; 1; 3; 17; 17; 4096; 123_456_789 ] in
  List.iter (Obs.observe h) values;
  match (Obs.snapshot t).Obs.s_hists with
  | [ d ] ->
    check ci "count" (List.length values) d.Obs.h_count;
    check ci "total" (List.fold_left ( + ) 0 values) d.Obs.h_total;
    check Alcotest.(option int) "min" (Some 0) d.Obs.h_min;
    check Alcotest.(option int) "max" (Some 123_456_789) d.Obs.h_max;
    check ci "bucket counts sum to count" d.Obs.h_count
      (List.fold_left (fun a (_, n) -> a + n) 0 d.Obs.h_buckets)
  | _ -> Alcotest.fail "expected exactly one histogram"

let test_spans_and_meters () =
  let t = Obs.create () in
  let misses = ref 0 in
  Obs.register_meter t "miss" (fun () -> !misses);
  let outer = Obs.open_span t ~component:"hypercall" ~key:1 ~at:100 in
  let inner = Obs.open_span t ~component:"htm_exec" ~key:1 ~at:110 in
  check ci "two spans open" 2 (Obs.open_spans t);
  (* Closing the outer span first is an imbalance. *)
  check cb "non-LIFO close raises" true
    (raises_invalid (fun () -> Obs.close_span t outer ~at:120));
  check cb "reset with open spans raises" true
    (raises_invalid (fun () -> Obs.reset t));
  misses := 3;
  Obs.close_span t inner ~at:150;
  Obs.close_span t outer ~at:200;
  check ci "all closed" 0 (Obs.open_spans t);
  let s = Obs.snapshot t in
  let cell comp =
    List.find (fun c -> c.Obs.c_component = comp) s.Obs.s_cells
  in
  let hc = cell "hypercall" and ex = cell "htm_exec" in
  check ci "outer cycles" 100 hc.Obs.c_cycles;
  check ci "inner cycles" 40 ex.Obs.c_cycles;
  check ci "outer sees the meter delta" 3
    (List.assoc "miss" hc.Obs.c_meters);
  check ci "inner sees its share" 3 (List.assoc "miss" ex.Obs.c_meters);
  check ci "keyed by pd" 1 hc.Obs.c_key;
  Obs.reset t;
  check cb "reset drops the cells" true
    ((Obs.snapshot t).Obs.s_cells = [])

let test_disabled_is_inert () =
  let t = Obs.disabled () in
  let c = Obs.counter t "noise" in
  Obs.incr c;
  Obs.add c 10;
  Obs.observe (Obs.histogram t "h") 42;
  Obs.set_gauge (Obs.gauge t "g") 9;
  let sp = Obs.open_span t ~component:"x" ~key:0 ~at:5 in
  Obs.close_span t sp ~at:50;
  Obs.sample t ~component:"y" ~key:1 ~cycles:99;
  check ci "counter stays zero" 0 (Obs.counter_value c);
  check cb "snapshot is the empty snapshot" true
    (Obs.snapshot t = Obs.empty_snapshot)

(* Regression: a registered-but-never-observed histogram must not leak
   the internal max_int/min_int fill sentinels into snapshots or JSON —
   it appears (on an enabled registry) with a zero count and null
   min/max. *)
let test_empty_histogram_emission () =
  let t = Obs.create () in
  ignore (Obs.histogram t "never_observed");
  (match (Obs.snapshot t).Obs.s_hists with
   | [ d ] ->
     check ci "count is zero" 0 d.Obs.h_count;
     check Alcotest.(option int) "min is None" None d.Obs.h_min;
     check Alcotest.(option int) "max is None" None d.Obs.h_max;
     check cb "no buckets" true (d.Obs.h_buckets = [])
   | _ -> Alcotest.fail "empty histogram missing from enabled snapshot");
  let b = Buffer.create 256 in
  Obs.snapshot_to_json b (Obs.snapshot t);
  let json = Buffer.contents b in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check cb "JSON has null min/max" true
    (contains "\"min\": null" json && contains "\"max\": null" json);
  check cb "no sentinel leaks" true
    (not (contains (string_of_int max_int) json));
  (* The empty_snapshot invariant for disabled registries is untouched. *)
  let d = Obs.disabled () in
  ignore (Obs.histogram d "ghost");
  check cb "disabled snapshot stays empty" true
    (Obs.snapshot d = Obs.empty_snapshot)

(* --- whole-system invariants under chaos --- *)

let observed_chaos rate =
  { Chaos.base =
      { Scenario.default_config with
        requests_per_guest = 12;
        observe = true };
    fault_rate = rate;
    fault_seed = 7 }

let test_chaos_metrics_invariants () =
  let r = Chaos.run ~config:(observed_chaos 0.2) ~guests:2 () in
  let s = r.Chaos.metrics in
  check cb "plane was on" true s.Obs.s_enabled;
  (* Span balance survives kills, quarantines and reclaims. *)
  check ci "no span left open" 0 s.Obs.s_open_spans;
  check cb "counters are non-negative" true
    (List.for_all (fun (_, v) -> v >= 0) s.Obs.s_counters);
  check cb "counters sorted by name" true
    (let names = List.map fst s.Obs.s_counters in
     names = List.sort compare names);
  let counter name =
    match List.assoc_opt name s.Obs.s_counters with Some v -> v | None -> 0
  in
  check cb "hypercalls counted" true (counter "hyper.hw_task_request" > 0);
  check cb "vm switches counted" true (counter "kernel.vm_switches" > 0);
  check cb "faults counted" true (counter "fault.injected" > 0);
  check ci "trace and metrics agree on injections" r.Chaos.trace_injects
    (counter "fault.injected");
  (* Every cell is internally consistent. *)
  List.iter
    (fun c ->
       check cb "cell has calls" true (c.Obs.c_calls > 0);
       check cb "max <= total" true (c.Obs.c_max_cycles <= c.Obs.c_cycles);
       check ci "cell buckets sum to calls" c.Obs.c_calls
         (List.fold_left (fun a (_, n) -> a + n) 0 c.Obs.c_buckets))
    s.Obs.s_cells;
  (* The headline cells exist: per-VM hypercall and world-switch
     attribution, and PL-side PCAP cells. *)
  let has comp = List.exists (fun c -> c.Obs.c_component = comp) s.Obs.s_cells in
  check cb "hypercall cells" true (has "hypercall");
  check cb "world-switch cells" true (has "world_switch");
  check cb "pcap cells" true (has "pcap")

(* --- the zero-cost promise: enabling the plane moves nothing --- *)

let test_observe_is_cycle_identical () =
  let base =
    { Scenario.default_config with requests_per_guest = 15; observe = false }
  in
  let off = Scenario.run_virtualized ~config:base ~guests:2 () in
  let on =
    Scenario.run_virtualized
      ~config:{ base with observe = true }
      ~guests:2 ()
  in
  check ci "identical simulated cycles" off.Scenario.sim_cycles
    on.Scenario.sim_cycles;
  check cb "identical measurements" true
    (off.Scenario.total_us = on.Scenario.total_us
     && off.Scenario.entry_us = on.Scenario.entry_us
     && off.Scenario.reconfigs = on.Scenario.reconfigs
     && off.Scenario.jobs = on.Scenario.jobs);
  check cb "off-run snapshot is empty" true
    (off.Scenario.metrics = Obs.empty_snapshot);
  check cb "on-run snapshot is not" true
    (on.Scenario.metrics.Obs.s_cells <> [])

let test_observe_is_identical_under_chaos () =
  let on = observed_chaos 0.2 in
  let off =
    { on with Chaos.base = { on.Chaos.base with Scenario.observe = false } }
  in
  let ron = Chaos.run ~config:on ~guests:2 () in
  let roff = Chaos.run ~config:off ~guests:2 () in
  (* Same report bit for bit, metrics aside. *)
  check cb "identical chaos report" true
    ({ ron with Chaos.metrics = Obs.empty_snapshot }
     = { roff with Chaos.metrics = Obs.empty_snapshot })

(* --- Hyper ABI enumeration + total serializer (satellite) --- *)

let test_hyper_abi_enumeration () =
  check ci "25 hypercalls" Hyper.hypercall_count
    (List.length Hyper.requests);
  check (Alcotest.list ci) "ABI numbers 1..25"
    (List.init Hyper.hypercall_count (fun i -> i + 1))
    (List.map Hyper.number Hyper.requests);
  let names = List.map Hyper.name Hyper.requests in
  check ci "names are unique"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_response_to_json_total () =
  let responses =
    [ Hyper.R_unit;
      Hyper.R_int 42;
      Hyper.R_bytes (Bytes.create 8);
      Hyper.R_hw { status = Hyper.Hw_busy; irq = None; prr = Some 2 };
      Hyper.R_msg None;
      Hyper.R_msg (Some (3, [| 1; 2 |]));
      Hyper.R_status { prr_ready = true; consistent = false; faults = 1 };
      Hyper.R_error "bad \"quote\"" ]
  in
  List.iter
    (fun r ->
       let b = Buffer.create 64 in
       Hyper.response_to_json b r;
       let s = Buffer.contents b in
       check cb "object-shaped" true
         (String.length s > 2 && s.[0] = '{' && s.[String.length s - 1] = '}');
       check cb "kind-tagged" true
         (String.length s >= 8 && String.sub s 1 6 = "\"kind\""))
    responses

(* --- per-pCPU cell keying --- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_cells_keyed_by_cpu () =
  let t = Obs.create ~cpu:2 () in
  check ci "registry carries its pCPU id" 2 (Obs.cpu t);
  let sp = Obs.open_span t ~component:"hypercall" ~key:1 ~at:100 in
  Obs.close_span t sp ~at:150;
  let s = Obs.snapshot t in
  (match s.Obs.s_cells with
   | [ c ] -> check ci "cell keyed by pCPU" 2 c.Obs.c_cpu
   | cs -> Alcotest.failf "expected one cell, got %d" (List.length cs));
  let b = Buffer.create 256 in
  Obs.snapshot_to_json b s;
  check cb "snapshot JSON carries the cpu key" true
    (contains (Buffer.contents b) "\"cpu\": 2");
  (* The default registry stays on pCPU 0 — the single-kernel view. *)
  check ci "default registry is pCPU 0" 0 (Obs.cpu (Obs.create ()))

let suite =
  ( "obs",
    [ Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
      Alcotest.test_case "histogram invariants" `Quick
        test_histogram_invariants;
      Alcotest.test_case "spans and meters" `Quick test_spans_and_meters;
      Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
      Alcotest.test_case "empty histogram emission" `Quick
        test_empty_histogram_emission;
      Alcotest.test_case "chaos metrics invariants" `Quick
        test_chaos_metrics_invariants;
      Alcotest.test_case "observe is cycle-identical" `Quick
        test_observe_is_cycle_identical;
      Alcotest.test_case "observe identical under chaos" `Quick
        test_observe_is_identical_under_chaos;
      Alcotest.test_case "hyper ABI enumeration" `Quick
        test_hyper_abi_enumeration;
      Alcotest.test_case "response_to_json is total" `Quick
        test_response_to_json_total;
      Alcotest.test_case "cells keyed by pCPU" `Quick
        test_cells_keyed_by_cpu ] )

(* Tests for the programmable-logic substrate: PRRs, PCAP, hwMMU,
   IP cores, the PRR controller, and the AXI cost models. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let test_task_kind_validate () =
  Task_kind.validate (Task_kind.Fft 256);
  Task_kind.validate (Task_kind.Qam 64);
  Alcotest.check_raises "fft too small"
    (Invalid_argument "Task_kind: FFT points must be a power of two in 256-8192")
    (fun () -> Task_kind.validate (Task_kind.Fft 128));
  Alcotest.check_raises "qam bad order"
    (Invalid_argument "Task_kind: QAM order must be 4, 16 or 64") (fun () ->
        Task_kind.validate (Task_kind.Qam 8))

(* Boundary sweep of the heterogeneous catalog's parameter ranges. *)
let test_new_kind_boundaries () =
  List.iter Task_kind.validate
    [ Task_kind.Fft_stream 256; Task_kind.Fft_stream 8192;
      Task_kind.Scramble 7; Task_kind.Scramble 31;
      Task_kind.Digest 64; Task_kind.Digest 80;
      Task_kind.Matmul 8; Task_kind.Matmul 64 ];
  let bad msg k =
    Alcotest.check_raises (Task_kind.name k) (Invalid_argument msg)
      (fun () -> Task_kind.validate k)
  in
  let sfft = "Task_kind: SFFT points must be a power of two in 256-8192" in
  bad sfft (Task_kind.Fft_stream 128);
  bad sfft (Task_kind.Fft_stream 16384);
  bad sfft (Task_kind.Fft_stream 300);
  let scr = "Task_kind: scrambler LFSR degree must be in 7-31" in
  bad scr (Task_kind.Scramble 6);
  bad scr (Task_kind.Scramble 32);
  let dig = "Task_kind: digest rounds must be 64 or 80" in
  bad dig (Task_kind.Digest 63);
  bad dig (Task_kind.Digest 72);
  let mm = "Task_kind: matmul order must be a power of two in 8-64" in
  bad mm (Task_kind.Matmul 4);
  bad mm (Task_kind.Matmul 128);
  bad mm (Task_kind.Matmul 12);
  check Alcotest.string "sfft name" "SFFT-1024"
    (Task_kind.name (Task_kind.Fft_stream 1024));
  check Alcotest.string "scrambler name" "SCR-23"
    (Task_kind.name (Task_kind.Scramble 23))

let test_new_bitstream_sizes () =
  let kb = 1024 in
  (* The catalog's footprint spread: the scrambler is the smallest
     core in the store, the 8K streaming FFT the largest. *)
  check ci "smallest core 71 KB" (71 * kb)
    (Bitstream.size_for (Task_kind.Scramble 7));
  check ci "largest core 670 KB" (670 * kb)
    (Bitstream.size_for (Task_kind.Fft_stream 8192));
  check ci "sfft-256" (320 * kb)
    (Bitstream.size_for (Task_kind.Fft_stream 256));
  check ci "digest-64" (214 * kb) (Bitstream.size_for (Task_kind.Digest 64));
  check ci "digest-80" (230 * kb) (Bitstream.size_for (Task_kind.Digest 80));
  check ci "matmul-64" (508 * kb) (Bitstream.size_for (Task_kind.Matmul 64));
  (* Monotone in the parameter within each family. *)
  let mono k1 k2 =
    check cb "size monotone" true
      (Bitstream.size_for k1 < Bitstream.size_for k2)
  in
  mono (Task_kind.Fft_stream 256) (Task_kind.Fft_stream 512);
  mono (Task_kind.Scramble 7) (Task_kind.Scramble 31);
  mono (Task_kind.Matmul 8) (Task_kind.Matmul 16);
  (* Only the big PRRs (1300 units) can host the streaming FFT. *)
  check cb "sfft-8192 needs a big region" true
    (Task_kind.resource_units (Task_kind.Fft_stream 8192) > 1200
     && Task_kind.resource_units (Task_kind.Fft_stream 8192) <= 1300);
  check cb "scrambler fits a small region" true
    (Task_kind.resource_units (Task_kind.Scramble 31) < 200)

let test_task_kind_resources () =
  check cb "fft bigger than qam" true
    (Task_kind.resource_units (Task_kind.Fft 256)
     > Task_kind.resource_units (Task_kind.Qam 64));
  check cb "fft grows with points" true
    (Task_kind.resource_units (Task_kind.Fft 8192)
     > Task_kind.resource_units (Task_kind.Fft 256))

let test_bitstream_sizes () =
  check ci "qam size" (80 * 1024) (Bitstream.size_for (Task_kind.Qam 16));
  check ci "fft-256 size" (250 * 1024) (Bitstream.size_for (Task_kind.Fft 256));
  check ci "fft-8192 size" (600 * 1024)
    (Bitstream.size_for (Task_kind.Fft 8192));
  let b = Bitstream.make ~id:3 ~kind:(Task_kind.Fft 512) ~store_addr:0x1000 in
  check ci "descriptor id" 3 b.Bitstream.id

let test_hw_mmu () =
  let h = Hw_mmu.create () in
  check cb "no window refuses" false (Hw_mmu.check h ~base:0 ~len:4);
  Hw_mmu.load_window h ~base:0x1000 ~size:0x1000;
  check cb "inside ok" true (Hw_mmu.check h ~base:0x1800 ~len:0x100);
  check cb "exact fit ok" true (Hw_mmu.check h ~base:0x1000 ~len:0x1000);
  check cb "overrun refused" false (Hw_mmu.check h ~base:0x1F00 ~len:0x200);
  check cb "below refused" false (Hw_mmu.check h ~base:0xF00 ~len:0x100);
  check ci "violations counted" 3 (Hw_mmu.violations h);
  Hw_mmu.clear_window h;
  check cb "cleared refuses" false (Hw_mmu.check h ~base:0x1800 ~len:4)

let test_prr_registers () =
  let p = Prr.make ~id:2 ~capacity:500 in
  check ci "regs page placement"
    (Address_map.prr_regs_base + (2 * Address_map.prr_regs_stride))
    p.Prr.regs_base;
  Prr.write_reg p Prr.Reg.len 123l;
  check (Alcotest.int32) "register file" 123l (Prr.read_reg p Prr.Reg.len);
  Prr.set_status_bit p 1 true;
  check (Alcotest.int32) "status bit set" 2l (Prr.read_reg p Prr.Reg.status);
  Prr.set_status_bit p 1 false;
  check (Alcotest.int32) "status bit cleared" 0l (Prr.read_reg p Prr.Reg.status);
  check cb "capacity check" true (Prr.can_host p (Task_kind.Qam 4));
  check cb "too big" false (Prr.can_host p (Task_kind.Fft 256))

let test_ip_core_fft_functional () =
  let mem = Phys_mem.create () in
  let n = 256 in
  let src = 0x10000 and dst = 0x20000 in
  let re = Array.init n (fun i -> sin (0.2 *. float_of_int i)) in
  Array.iteri
    (fun i r ->
       Phys_mem.write_f32 mem (src + (8 * i)) r;
       Phys_mem.write_f32 mem (src + (8 * i) + 4) 0.0)
    re;
  let job =
    { Ip_core.kind = Task_kind.Fft n; src; dst; len = n; param = 0 }
  in
  check ci "bytes in" (8 * n) (Ip_core.bytes_in job);
  check ci "items" n (Ip_core.items job);
  Ip_core.run mem job;
  let hw_re = Array.init n (fun i -> Phys_mem.read_f32 mem (dst + (8 * i))) in
  let sw_re = Array.map (fun x -> Int32.float_of_bits (Int32.bits_of_float x)) re in
  let sw_im = Array.make n 0.0 in
  Fft.transform sw_re sw_im;
  check cb "matches software FFT (f32 storage)" true
    (Fft.max_error hw_re sw_re < 1e-2)

let test_ip_core_qam_functional () =
  let mem = Phys_mem.create () in
  let bits = Array.init 24 (fun i -> (i / 3) land 1) in
  let src = 0x1000 and dst = 0x2000 in
  Array.iteri (fun i b -> Phys_mem.write_u8 mem (src + i) b) bits;
  Ip_core.run mem
    { Ip_core.kind = Task_kind.Qam 16; src; dst; len = 24; param = 0 };
  (* Demodulate what the core wrote. *)
  let nsym = 24 / 4 in
  let i_arr = Array.init nsym (fun k -> Phys_mem.read_f32 mem (dst + (8 * k))) in
  let q_arr =
    Array.init nsym (fun k -> Phys_mem.read_f32 mem (dst + (8 * k) + 4))
  in
  check cb "demodulates back" true
    (Qam.demodulate Qam.Qam16 ~i:i_arr ~q:q_arr = bits)

let test_ip_core_fir_functional () =
  let mem = Phys_mem.create () in
  let n = 256 in
  let src = 0x4000 and dst = 0x8000 in
  let x =
    Array.init n (fun i ->
        sin (2.0 *. Float.pi *. 0.02 *. float_of_int i)
        +. sin (2.0 *. Float.pi *. 0.45 *. float_of_int i))
  in
  Array.iteri (fun i v -> Phys_mem.write_f32 mem (src + (4 * i)) v) x;
  (* PARAM: lowpass, cutoff 0.125 (raw 32). *)
  Ip_core.run mem
    { Ip_core.kind = Task_kind.Fir 63; src; dst; len = n; param = 32 lsl 8 };
  let y = Array.init n (fun i -> Phys_mem.read_f32 mem (dst + (4 * i))) in
  let h = Fir.design ~taps:63 (Fir.Lowpass 0.125) in
  let x32 =
    Array.map (fun v -> Int32.float_of_bits (Int32.bits_of_float v)) x
  in
  let expect = Fir.apply h x32 in
  let err = ref 0.0 in
  Array.iteri (fun i v -> err := Float.max !err (Float.abs (v -. expect.(i)))) y;
  check cb "matches software FIR" true (!err < 1e-3)

let test_ip_core_validation () =
  let job =
    { Ip_core.kind = Task_kind.Fft 256; src = 0; dst = 0; len = 100;
      param = 0 }
  in
  check cb "bad length rejected" true (Result.is_error (Ip_core.validate job));
  let ok = { job with Ip_core.len = 512 } in
  check cb "multiple accepted" true (Result.is_ok (Ip_core.validate ok))

(* --- PCAP --- *)

let board () = Zynq.create ()

let test_pcap_transfer () =
  let z = board () in
  let prr = Prr_controller.prr z.Zynq.prrc 0 in
  let bit =
    Bitstream.make ~id:1 ~kind:(Task_kind.Fft 1024)
      ~store_addr:Address_map.bitstream_store_base
  in
  Gic.enable z.Zynq.gic Irq_id.devcfg;
  (match Pcap.launch z.Zynq.pcap bit prr with
   | `Started d ->
     check cb "latency scales with size" true
       (Cycles.to_ms d > 1.0 && Cycles.to_ms d < 10.0)
   | `Busy -> Alcotest.fail "should start");
  check cb "busy during transfer" true (Pcap.busy z.Zynq.pcap);
  check cb "prr reconfiguring" true (prr.Prr.state = Prr.Reconfiguring);
  (* Second launch refused while busy. *)
  (match Pcap.launch z.Zynq.pcap bit (Prr_controller.prr z.Zynq.prrc 1) with
   | `Busy -> ()
   | `Started _ -> Alcotest.fail "single channel must serialize");
  ignore (Event_queue.advance_until z.Zynq.queue (Cycles.of_ms 20.0));
  check cb "ready after download" true (prr.Prr.state = Prr.Ready);
  check cb "task loaded" true (prr.Prr.loaded = Some bit);
  check cb "completion irq" true (Gic.is_pending z.Zynq.gic Irq_id.devcfg);
  check (Alcotest.option ci) "last completed" (Some 1)
    (Pcap.last_completed z.Zynq.pcap);
  check ci "counted" 1 (Pcap.transfers z.Zynq.pcap)

let test_pcap_latency_ordering () =
  let big = Bitstream.make ~id:1 ~kind:(Task_kind.Fft 8192) ~store_addr:0x1000 in
  let small = Bitstream.make ~id:2 ~kind:(Task_kind.Qam 4) ~store_addr:0x2000 in
  check cb "bigger bitstream, longer download" true
    (Pcap.transfer_cycles big > Pcap.transfer_cycles small)

(* Regression: an aborted DMA fires DevCfg at d/2 — [`Started] must
   carry that cycle count, not the full transfer latency (callers use
   it for timeout/trace accounting). Fault choice is seed-driven, so
   sweep seeds until both failure modes have been exercised. *)
let test_pcap_abort_reports_real_completion () =
  let bit =
    Bitstream.make ~id:1 ~kind:(Task_kind.Fft 1024) ~store_addr:0x1000
  in
  let d = Pcap.transfer_cycles bit in
  let seen_abort = ref false and seen_corrupt = ref false in
  let seed = ref 0 in
  while (not (!seen_abort && !seen_corrupt)) && !seed < 64 do
    let z = Zynq.create ~fault_seed:!seed ~fault_rate:1.0 () in
    let prr = Prr_controller.prr z.Zynq.prrc 0 in
    (match Pcap.launch z.Zynq.pcap bit prr with
     | `Busy -> Alcotest.fail "should start"
     | `Started u ->
       check cb "duration is d (corrupt) or d/2 (abort)" true
         (u = d || u = max 1 (d / 2));
       if u < d then begin
         seen_abort := true;
         ignore (Event_queue.advance_until z.Zynq.queue (u - 1));
         check ci "no failure before the reported cycle" 0
           (Pcap.failures z.Zynq.pcap);
         ignore (Event_queue.advance_until z.Zynq.queue u);
         check ci "failed exactly at the reported cycle" 1
           (Pcap.failures z.Zynq.pcap);
         check cb "channel free again" false (Pcap.busy z.Zynq.pcap)
       end
       else seen_corrupt := true);
    incr seed
  done;
  check cb "abort case exercised" true !seen_abort;
  check cb "corrupt case exercised" true !seen_corrupt

(* --- streaming FFT timing model --- *)

let test_stream_fft_model () =
  check cb "fill latency grows with points" true
    (Stream_fft.fill_latency 1024 > Stream_fft.fill_latency 256);
  check ci "fill latency closed form" (255 + (4 * 8))
    (Stream_fft.fill_latency 256);
  let j ?fifo_depth ~samples ~out_beat () =
    Stream_fft.job_cycles ?fifo_depth ~points:256 ~samples ~in_beat:1
      ~out_beat ()
  in
  (* One sample per fabric cycle once the pipe is full. *)
  let c1 = j ~samples:1024 ~out_beat:1 () in
  let c2 = j ~samples:2048 ~out_beat:1 () in
  check ci "steady state streams 1 sample/cycle" 1024 (c2 - c1);
  (* A slow drain (ACP write beat) backpressures the whole pipe: the
     job stretches to ~2 cycles/sample, which a lump-sum dma+compute
     model cannot show. *)
  let s1 = j ~samples:2048 ~out_beat:2 () in
  check cb "slow drain visible upstream" true (s1 > c2 + 1024);
  (* Deeper inter-stage FIFOs only ever help (they absorb transients;
     steady-state throughput is bound by the slowest element). *)
  let s2 = j ~fifo_depth:64 ~samples:2048 ~out_beat:2 () in
  check cb "deeper fifos never hurt" true (s2 <= s1);
  check ci "empty job costs nothing" 0
    (Stream_fft.job_cycles ~points:256 ~samples:0 ~in_beat:1 ~out_beat:1 ())

(* --- PRR controller --- *)

let load_task z prr_id kind =
  let prr = Prr_controller.prr z.Zynq.prrc prr_id in
  let bit =
    Bitstream.make ~id:9 ~kind ~store_addr:Address_map.bitstream_store_base
  in
  (match Pcap.launch z.Zynq.pcap bit prr with
   | `Started _ -> ()
   | `Busy -> Alcotest.fail "pcap busy");
  ignore (Event_queue.advance_until z.Zynq.queue (Clock.now z.Zynq.clock + Cycles.of_ms 20.0));
  prr

let test_controller_decode () =
  let z = board () in
  let a = Address_map.prr_regs_base + Address_map.prr_regs_stride + 8 in
  (match Prr_controller.decode_addr z.Zynq.prrc a with
   | Some (prr, reg) ->
     check ci "prr id" 1 prr.Prr.id;
     check ci "reg index" 2 reg
   | None -> Alcotest.fail "expected decode");
  check cb "unaligned rejected" true
    (Prr_controller.decode_addr z.Zynq.prrc (a + 2) = None);
  check cb "beyond groups rejected" true
    (Prr_controller.decode_addr z.Zynq.prrc
       (Address_map.prr_regs_base + (100 * Address_map.prr_regs_stride))
     = None)

let write_reg z prr reg v =
  Prr_controller.mmio_write z.Zynq.prrc
    (prr.Prr.regs_base + (4 * reg)) (Int32.of_int v)

let read_reg z prr reg =
  Int32.to_int (Prr_controller.mmio_read z.Zynq.prrc (prr.Prr.regs_base + (4 * reg)))

let test_controller_job () =
  let z = board () in
  let prr = load_task z 2 (Task_kind.Qam 4) in
  let win = Address_map.guest_phys_base 0 in
  Hw_mmu.load_window prr.Prr.hw_mmu ~base:win ~size:65536;
  (* Input: 16 bits at offset 64. *)
  for i = 0 to 15 do
    Phys_mem.write_u8 z.Zynq.mem (win + 64 + i) (i land 1)
  done;
  write_reg z prr Prr.Reg.src_offset 64;
  write_reg z prr Prr.Reg.dst_offset 128;
  write_reg z prr Prr.Reg.len 16;
  write_reg z prr Prr.Reg.param 0;
  write_reg z prr Prr.Reg.ctrl 1;
  check cb "busy after start" true (prr.Prr.state = Prr.Busy);
  ignore (Event_queue.advance_until z.Zynq.queue (Clock.now z.Zynq.clock + Cycles.of_ms 1.0));
  check cb "done" true (prr.Prr.state = Prr.Ready);
  let status = read_reg z prr Prr.Reg.status in
  check ci "done bit" 2 (status land 2);
  check ci "read-to-clear" 0 (read_reg z prr Prr.Reg.status land 2);
  check ci "job counted" 1 (Prr_controller.jobs_completed z.Zynq.prrc);
  (* The QAM-4 symbols for bits 01: verify one sample is on the grid. *)
  let i0 = Phys_mem.read_f32 z.Zynq.mem (win + 128) in
  check cb "output written" true (Float.abs i0 > 0.1)

let test_controller_hwmmu_refusal () =
  let z = board () in
  let prr = load_task z 2 (Task_kind.Qam 4) in
  Hw_mmu.load_window prr.Prr.hw_mmu ~base:(Address_map.guest_phys_base 0)
    ~size:256;
  write_reg z prr Prr.Reg.src_offset 64;
  write_reg z prr Prr.Reg.dst_offset 128;
  write_reg z prr Prr.Reg.len 4096; (* far beyond the 256-byte window *)
  write_reg z prr Prr.Reg.ctrl 1;
  let status = read_reg z prr Prr.Reg.status in
  check cb "violation flagged" true (status land 4 <> 0);
  check cb "no job ran" true (Prr_controller.jobs_completed z.Zynq.prrc = 0);
  check cb "violations recorded" true (Hw_mmu.violations prr.Prr.hw_mmu > 0)

let test_controller_coherence_warning () =
  let z = board () in
  let prr = load_task z 2 (Task_kind.Qam 4) in
  let win = Address_map.guest_phys_base 0 in
  Hw_mmu.load_window prr.Prr.hw_mmu ~base:win ~size:65536;
  (* Dirty the input range in the CPU caches and skip the clean. *)
  ignore (Hierarchy.access z.Zynq.hier Hierarchy.Store (win + 64));
  write_reg z prr Prr.Reg.src_offset 64;
  write_reg z prr Prr.Reg.dst_offset 1024;
  write_reg z prr Prr.Reg.len 16;
  write_reg z prr Prr.Reg.ctrl 1;
  check ci "coherence warning counted" 1
    (Prr_controller.coherence_warnings z.Zynq.prrc);
  check cb "warning bit set" true (read_reg z prr Prr.Reg.status land 8 <> 0)

let test_controller_irq_allocation () =
  let z = board () in
  (match Prr_controller.allocate_irq z.Zynq.prrc ~prr_id:0 with
   | Some 0 -> ()
   | _ -> Alcotest.fail "first source expected");
  check (Alcotest.option ci) "owner recorded" (Some 0)
    (Prr_controller.irq_owner z.Zynq.prrc 0);
  (* Idempotent for the same PRR. *)
  check (Alcotest.option ci) "idempotent" (Some 0)
    (Prr_controller.allocate_irq z.Zynq.prrc ~prr_id:0);
  (match Prr_controller.allocate_irq z.Zynq.prrc ~prr_id:1 with
   | Some 1 -> ()
   | _ -> Alcotest.fail "second source expected");
  Prr_controller.release_irq z.Zynq.prrc ~prr_id:0;
  check (Alcotest.option ci) "released" None
    (Prr_controller.irq_owner z.Zynq.prrc 0)

let test_controller_irq_exhaustion () =
  let z =
    Zynq.create ~prr_capacities:(List.init 20 (fun _ -> 100)) ()
  in
  let allocated = ref 0 in
  for p = 0 to 19 do
    match Prr_controller.allocate_irq z.Zynq.prrc ~prr_id:p with
    | Some _ -> incr allocated
    | None -> ()
  done;
  check ci "only 16 PL sources exist" 16 !allocated

let test_axi_costs () =
  check cb "hp cost grows" true
    (Axi.hp_transfer_cycles 65536 > Axi.hp_transfer_cycles 1024);
  let clock = Clock.create () in
  let h = Hierarchy.create clock in
  let l2 = Hierarchy.l2 h in
  let base = 0x100000 in
  ignore (Axi.acp_transfer_cycles 4096 ~l2 base);
  check cb "acp allocates into L2" true (Cache.probe l2 base);
  check cb "acp covers whole payload" true (Cache.probe l2 (base + 4064))

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "pl",
    [ t "task kind validate" test_task_kind_validate;
      t "new kind boundaries" test_new_kind_boundaries;
      t "task kind resources" test_task_kind_resources;
      t "bitstream sizes" test_bitstream_sizes;
      t "new bitstream sizes" test_new_bitstream_sizes;
      t "hw mmu" test_hw_mmu;
      t "prr registers" test_prr_registers;
      t "ip core fft" test_ip_core_fft_functional;
      t "ip core qam" test_ip_core_qam_functional;
      t "ip core fir" test_ip_core_fir_functional;
      t "ip core validation" test_ip_core_validation;
      t "pcap transfer" test_pcap_transfer;
      t "pcap latency ordering" test_pcap_latency_ordering;
      t "pcap abort reports real completion"
        test_pcap_abort_reports_real_completion;
      t "stream fft model" test_stream_fft_model;
      t "controller decode" test_controller_decode;
      t "controller job" test_controller_job;
      t "controller hwmmu refusal" test_controller_hwmmu_refusal;
      t "controller coherence warning" test_controller_coherence_warning;
      t "controller irq allocation" test_controller_irq_allocation;
      t "controller irq exhaustion" test_controller_irq_exhaustion;
      t "axi costs" test_axi_costs ] )

(* ABI v2 descriptor rings: doorbell edge cases, conservation under
   kill, v1/v2 protocol equivalence, O(1) fleet scaling and the
   density sweep's transition-ratio acceptance gate. *)

let ci = Alcotest.int
let cb = Alcotest.bool

let boot_with_tasks () =
  let z = Zynq.create () in
  let kern = Kernel.boot z in
  let tasks =
    Array.map (Kernel.register_hw_task kern)
      [| Task_kind.Qam 4; Task_kind.Qam 16; Task_kind.Fft 256 |]
  in
  (z, kern, tasks)

(* ------------------------------------------------------------------ *)
(* Round trip: a batch of requests through one doorbell, completions   *)
(* drained guest-side, totals conserved.                               *)

let test_ring_roundtrip () =
  let _z, kern, tasks = boot_with_tasks () in
  let statuses = ref [] in
  ignore
    (Kernel.create_vm kern ~name:"ring" (fun genv ->
         let p = Port.paravirt genv in
         match Ring_api.setup p ~entries:8 ~cvirq_budget:0 () with
         | Error e -> Alcotest.failf "setup: %s" e
         | Ok r ->
           (match
              Ring_api.submit_requests p r
                ~tasks:[ tasks.(0); tasks.(1) ] ()
            with
            | Error e -> Alcotest.failf "submit: %s" e
            | Ok (accepted, cqes) ->
              Alcotest.check ci "both descriptors accepted" 2 accepted;
              statuses :=
                List.map (fun (c : Ring_api.cqe) -> c.Ring_api.status) cqes)));
  Kernel.run_for kern (Cycles.of_ms 5.0);
  Alcotest.check ci "two completions drained" 2 (List.length !statuses);
  (* Both jobs hit the PCAP in one batch, so the second may be busy;
     what matters is that every descriptor got a real manager verdict
     and at least one won a PRR. *)
  List.iter
    (fun s ->
       Alcotest.check cb
         (Printf.sprintf "valid completion status (%s)"
            (Ring_api.status_name s))
         true
         (s = Ring_api.status_success || s = Ring_api.status_reconfig
          || s = Ring_api.status_busy))
    !statuses;
  Alcotest.check cb "the first job won a PRR" true
    (match !statuses with
     | s :: _ -> s = Ring_api.status_success || s = Ring_api.status_reconfig
     | [] -> false);
  let rs = Kernel.ring_stats kern in
  Alcotest.check ci "enqueued" 2 rs.Kernel.rs_enqueued;
  Alcotest.check ci "completed" 2 rs.Kernel.rs_completed;
  Alcotest.check ci "nothing reclaimed" 0 rs.Kernel.rs_reclaimed;
  Alcotest.check ci "one doorbell" 1 rs.Kernel.rs_doorbells;
  Alcotest.check ci "batch of two" 2 rs.Kernel.rs_max_batch;
  Alcotest.(check (list string)) "invariants hold" []
    (List.map Invariant.violation_to_string
       (Invariant.check kern ~boundary:"test"))

(* ------------------------------------------------------------------ *)
(* A doorbell with nothing published is explicitly cheap and counted.  *)

let test_empty_doorbell () =
  let _z, kern, _tasks = boot_with_tasks () in
  let drained = ref (-1) in
  ignore
    (Kernel.create_vm kern ~name:"empty" (fun genv ->
         let p = Port.paravirt genv in
         match Ring_api.setup p ~entries:8 ~cvirq_budget:0 () with
         | Error e -> Alcotest.failf "setup: %s" e
         | Ok r ->
           (match Ring_api.doorbell p r with
            | Ok n -> drained := n
            | Error e -> Alcotest.failf "doorbell: %s" e)));
  Kernel.run_for kern (Cycles.of_ms 2.0);
  Alcotest.check ci "nothing drained" 0 !drained;
  let rs = Kernel.ring_stats kern in
  Alcotest.check ci "empty doorbell counted" 1 rs.Kernel.rs_empty_doorbells;
  Alcotest.check ci "doorbell counted" 1 rs.Kernel.rs_doorbells

(* ------------------------------------------------------------------ *)
(* CQ backpressure: with the completion ring full, a doorbell accepts  *)
(* the published descriptors but drains none; killing the guest then   *)
(* reclaims the in-flight batch, keeping conservation closed.          *)

let test_backpressure_then_kill_reclaims () =
  let _z, kern, tasks = boot_with_tasks () in
  let phase = ref 0 in
  let full_rejected = ref false in
  let pd =
    Kernel.create_vm kern ~name:"bp" (fun genv ->
        let p = Port.paravirt genv in
        match Ring_api.setup p ~entries:4 ~cvirq_budget:0 () with
        | Error e -> Alcotest.failf "setup: %s" e
        | Ok r ->
          let enq tag =
            Ring_api.enqueue p r ~op:`Request ~task:tasks.(0) ~tag ()
          in
          for tag = 1 to 4 do
            ignore (enq tag)
          done;
          (* SQ full: the fifth descriptor must be refused. *)
          full_rejected := not (enq 5);
          ignore (Ring_api.doorbell p r);
          (* CQ now holds 4 unconsumed completions. Publish four more
             requests; this doorbell finds zero CQ room and leaves
             them all in flight. *)
          for tag = 5 to 8 do
            ignore (enq tag)
          done;
          ignore (Ring_api.doorbell p r);
          phase := 1;
          while true do
            ignore (Hyper.pause ())
          done)
  in
  let budget = ref 100 in
  while !phase = 0 && !budget > 0 do
    Kernel.run_for kern (Cycles.of_ms 1.0);
    decr budget
  done;
  Alcotest.check ci "guest reached the stalled batch" 1 !phase;
  Alcotest.check cb "full submission ring rejects the enqueue" true
    !full_rejected;
  let rs = Kernel.ring_stats kern in
  Alcotest.check ci "eight descriptors observed" 8 rs.Kernel.rs_enqueued;
  Alcotest.check ci "only the first batch completed" 4 rs.Kernel.rs_completed;
  Alcotest.check ci "backpressured doorbell counted empty" 1
    rs.Kernel.rs_empty_doorbells;
  Alcotest.(check (list string)) "conserved with a batch in flight" []
    (List.map Invariant.violation_to_string
       (Invariant.check kern ~boundary:"test"));
  Alcotest.check cb "kill mid-batch" true
    (Kernel.kill_vm kern pd.Pd.id ~reason:"test");
  let rs = Kernel.ring_stats kern in
  Alcotest.check ci "in-flight batch reclaimed" 4 rs.Kernel.rs_reclaimed;
  Alcotest.check ci "totals closed" rs.Kernel.rs_enqueued
    (rs.Kernel.rs_completed + rs.Kernel.rs_reclaimed);
  Alcotest.(check (list string)) "conserved after the kill" []
    (List.map Invariant.violation_to_string
       (Invariant.check kern ~boundary:"test"))

(* ------------------------------------------------------------------ *)
(* Completion-vIRQ moderation: ceil(batch / budget) injections.        *)

let test_virq_moderation () =
  let _z, kern, tasks = boot_with_tasks () in
  ignore
    (Kernel.create_vm kern ~name:"virq" (fun genv ->
         let p = Port.paravirt genv in
         match Ring_api.setup p ~entries:8 ~cvirq_budget:2 () with
         | Error e -> Alcotest.failf "setup: %s" e
         | Ok r ->
           for tag = 1 to 5 do
             ignore
               (Ring_api.enqueue p r ~op:`Request
                  ~task:tasks.(tag mod Array.length tasks) ~tag ())
           done;
           ignore (Ring_api.doorbell p r)));
  Kernel.run_for kern (Cycles.of_ms 5.0);
  let rs = Kernel.ring_stats kern in
  Alcotest.check ci "batch of five" 5 rs.Kernel.rs_max_batch;
  Alcotest.check ci "ceil(5/2) moderated vIRQs" 3 rs.Kernel.rs_virqs

(* ------------------------------------------------------------------ *)
(* v1/v2 equivalence: the same job sequence driven through per-job     *)
(* hypercalls and through ring descriptors produces identical hwtm     *)
(* job events (operation, task, status) — both ABIs share exec_job /   *)
(* exec_release, and this pins it from the outside.                    *)

let job_events tr =
  List.map
    (fun (e : Ktrace.event) -> e.Ktrace.fields)
    (Ktrace.find tr ~category:"hwtm" ~name:"job" ())

let job_sequence tasks = [ tasks.(0); tasks.(1); tasks.(0); tasks.(2) ]

(* Poll the status hypercall until the PRR is ready, so both drivers
   release at a deterministic point in the task's life cycle (the
   reconfig download finishes before the release, on either ABI). *)
let wait_ready task =
  let rec go budget =
    if budget = 0 then Alcotest.fail "task never became ready";
    match Hyper.hypercall (Hyper.Hw_task_status { task }) with
    | Hyper.R_status { prr_ready = true; _ } -> ()
    | _ ->
      ignore (Hyper.pause ());
      go (budget - 1)
  in
  go 100_000

let drive_v1 tasks _genv =
  List.iter
    (fun task ->
       match
         Hyper.hypercall
           (Hyper.Hw_task_request
              { task;
                iface_vaddr = Guest_layout.default_iface_vaddr 0;
                data_vaddr = Guest_layout.default_data_section;
                data_len = Guest_layout.default_data_section_len;
                want_irq = false })
       with
       | Hyper.R_hw { status = Hyper.Hw_success | Hyper.Hw_reconfig; _ } ->
         wait_ready task;
         ignore (Hyper.hypercall (Hyper.Hw_task_release { task }))
       | _ -> ())
    (job_sequence tasks)

let drive_v2 tasks genv =
  let p = Port.paravirt genv in
  match Ring_api.setup p ~entries:8 ~cvirq_budget:0 () with
  | Error e -> Alcotest.failf "setup: %s" e
  | Ok r ->
    List.iter
      (fun task ->
         match Ring_api.submit_requests p r ~tasks:[ task ] () with
         | Error e -> Alcotest.failf "submit: %s" e
         | Ok (_, [ c ])
           when c.Ring_api.status = Ring_api.status_success
                || c.Ring_api.status = Ring_api.status_reconfig ->
           wait_ready task;
           ignore (Ring_api.enqueue p r ~op:`Release ~task ~tag:99 ());
           ignore (Ring_api.doorbell p r);
           ignore (Ring_api.drain_completions p r)
         | Ok _ -> ())
      (job_sequence tasks)

let traced_run drive =
  let z = Zynq.create () in
  let kern = Kernel.boot z in
  let tasks =
    Array.map (Kernel.register_hw_task kern)
      [| Task_kind.Qam 4; Task_kind.Qam 16; Task_kind.Fft 256 |]
  in
  let tr = Ktrace.create ~capacity:16384 in
  Kernel.set_trace kern (Some tr);
  ignore (Kernel.create_vm kern ~name:"drv" (drive tasks));
  Kernel.run_for kern (Cycles.of_ms 100.0);
  job_events tr

let field_to_string = function
  | name, Ktrace.Int i -> Printf.sprintf "%s=%d" name i
  | name, Ktrace.Str s -> Printf.sprintf "%s=%s" name s
  | name, Ktrace.Bool b -> Printf.sprintf "%s=%b" name b

let test_v1_v2_equivalence () =
  let v1 = traced_run drive_v1 in
  let v2 = traced_run drive_v2 in
  let render evs =
    List.map (fun fs -> String.concat " " (List.map field_to_string fs)) evs
  in
  (* 4 jobs, each a request + a release. *)
  Alcotest.check ci "v1 ran every job" 8 (List.length v1);
  Alcotest.(check (list string)) "identical job streams" (render v1)
    (render v2)

(* ------------------------------------------------------------------ *)
(* Fleet scaling: creating the 256th guest costs exactly as many       *)
(* allocation steps as creating the first.                             *)

let idle_guest _genv =
  while true do
    ignore (Hyper.pause ())
  done

let test_flat_cost_create_256 () =
  let z = Zynq.create () in
  let kern = Kernel.boot z in
  let n = Address_map.guest_slot_count in
  Alcotest.check cb "window space for 256 guests" true (n >= 256);
  let deltas = Array.make 256 0 in
  let prev = ref (Kernel.alloc_steps kern) in
  let pds =
    Array.init 256 (fun i ->
        let pd =
          Kernel.create_vm kern ~name:(Printf.sprintf "f%d" i) idle_guest
        in
        let now = Kernel.alloc_steps kern in
        deltas.(i) <- now - !prev;
        prev := now;
        pd.Pd.id)
  in
  Alcotest.check ci "256 alive" 256 (Kernel.alive_guests kern);
  Array.iteri
    (fun i d ->
       Alcotest.check ci
         (Printf.sprintf "create %d costs what create 0 cost" i)
         deltas.(0) d)
    deltas;
  (* Recycling is O(1) too: killing and re-creating must not scan. *)
  Array.iter
    (fun id -> ignore (Kernel.kill_vm kern id ~reason:"scaling")) pds;
  Alcotest.check ci "all reaped" 0 (Kernel.alive_guests kern);
  let before = Kernel.alloc_steps kern in
  ignore (Kernel.create_vm kern ~name:"again" idle_guest);
  Alcotest.check ci "recycled create costs the same" deltas.(0)
    (Kernel.alloc_steps kern - before);
  Alcotest.(check (list string)) "invariants hold" []
    (List.map Invariant.violation_to_string
       (Invariant.check kern ~boundary:"test"))

(* ------------------------------------------------------------------ *)
(* Density acceptance gate: at batch >= 8 the ring ABI needs at least  *)
(* 4x fewer guest->kernel transitions per job than per-job hypercalls. *)

let density_cfg mode =
  { Density.default_config with
    Density.vms = 4; mode; jobs_per_vm = 16; batch = 8; check = true }

let test_density_transition_gate () =
  let v1 = Density.run ~config:(density_cfg Density.V1) () in
  let v2 = Density.run ~config:(density_cfg Density.V2) () in
  Alcotest.check ci "same fleet job count" v1.Density.jobs_submitted
    v2.Density.jobs_submitted;
  Alcotest.check cb "v1 makes progress" true (v1.Density.jobs_ok > 0);
  Alcotest.check cb "v2 makes progress" true (v2.Density.jobs_ok > 0);
  Alcotest.check cb "no crashes" true
    (v1.Density.crashes = 0 && v2.Density.crashes = 0);
  Alcotest.check cb "victim completed in both" true
    (v1.Density.victim_ok = v1.Density.victim_jobs
     && v2.Density.victim_ok = v2.Density.victim_jobs);
  let ratio =
    v1.Density.transitions_per_job /. v2.Density.transitions_per_job
  in
  Alcotest.check cb
    (Printf.sprintf "ring ABI cuts transitions >= 4x (got %.2fx)" ratio)
    true (ratio >= 4.0)

let test_density_deterministic () =
  let a = Density.run ~config:(density_cfg Density.V2) () in
  let b = Density.run ~config:(density_cfg Density.V2) () in
  Alcotest.check ci "transitions" a.Density.transitions
    b.Density.transitions;
  Alcotest.check ci "jobs ok" a.Density.jobs_ok b.Density.jobs_ok;
  Alcotest.check ci "ring enqueued" a.Density.ring.Kernel.rs_enqueued
    b.Density.ring.Kernel.rs_enqueued;
  Alcotest.check ci "sim cycles" a.Density.sim_cycles b.Density.sim_cycles

(* ------------------------------------------------------------------ *)
(* Manager admission order. CQEs are written in execution order, so    *)
(* the echoed tags pin the order a doorbell batch was drained in.      *)

let admission_run ?config ~deadlines () =
  let z = Zynq.create () in
  let kern = Kernel.boot ?config z in
  let task = Kernel.register_hw_task kern (Task_kind.Qam 4) in
  let tr = Ktrace.create ~capacity:4096 in
  Kernel.set_trace kern (Some tr);
  let tags = ref [] in
  ignore
    (Kernel.create_vm kern ~name:"adm" (fun genv ->
         let p = Port.paravirt genv in
         match Ring_api.setup p ~entries:8 ~cvirq_budget:0 () with
         | Error e -> Alcotest.failf "setup: %s" e
         | Ok r ->
           List.iteri
             (fun i deadline ->
                Alcotest.check cb "descriptor accepted" true
                  (Ring_api.enqueue p r ~op:`Request ~task ~deadline
                     ~tag:(i + 1) ()))
             deadlines;
           ignore (Ring_api.doorbell p r);
           tags :=
             List.map
               (fun (c : Ring_api.cqe) -> c.Ring_api.tag)
               (Ring_api.drain_completions p r)));
  Kernel.run_for kern (Cycles.of_ms 5.0);
  Alcotest.(check (list string)) "invariants hold" []
    (List.map Invariant.violation_to_string
       (Invariant.check kern ~boundary:"test"));
  let rendered =
    List.map
      (fun (e : Ktrace.event) ->
         String.concat " " (List.map field_to_string e.Ktrace.fields))
      (Ktrace.find tr ~category:"hwtm" ~name:"job" ())
  in
  (!tags, Clock.now z.Zynq.clock, rendered)

let test_deadline_admission_order () =
  let cfg = { Kernel.default_config with Kernel.ring_admission = `Deadline } in
  (* Tags 1,2,3 submitted with deadlines 30,10,20: deadline-ordered
     admission must execute (and complete) them as 2, 3, 1. *)
  let tags, _, _ = admission_run ~config:cfg ~deadlines:[ 30; 10; 20 ] () in
  Alcotest.(check (list int)) "ascending-deadline execution order"
    [ 2; 3; 1 ] tags;
  (* Equal keys keep submission order: the sort is stable. *)
  let tags, _, _ = admission_run ~config:cfg ~deadlines:[ 7; 7; 7 ] () in
  Alcotest.(check (list int)) "equal deadlines stay FIFO" [ 1; 2; 3 ] tags

let test_fifo_admission_ignores_deadlines () =
  (* Default config is FIFO, and under it the deadline key is inert:
     the same batch with scrambled keys is bit-identical (execution
     order, job trace, final clock) to the all-zero-key run. *)
  Alcotest.check cb "default admission is fifo" true
    (Kernel.default_config.Kernel.ring_admission = `Fifo);
  let tags0, clock0, trace0 = admission_run ~deadlines:[ 0; 0; 0 ] () in
  let tags1, clock1, trace1 = admission_run ~deadlines:[ 30; 10; 20 ] () in
  Alcotest.(check (list int)) "submission order either way" tags0 tags1;
  Alcotest.(check (list int)) "tags 1..3" [ 1; 2; 3 ] tags0;
  Alcotest.(check (list string)) "identical job traces" trace0 trace1;
  Alcotest.check ci "identical final clocks" clock0 clock1

let suite =
  ( "ring-abi",
    let t = Alcotest.test_case in
    [ t "ring round trip" `Quick test_ring_roundtrip;
      t "empty doorbell" `Quick test_empty_doorbell;
      t "backpressure + kill reclaims" `Quick
        test_backpressure_then_kill_reclaims;
      t "vIRQ moderation" `Quick test_virq_moderation;
      t "v1/v2 job-stream equivalence" `Quick test_v1_v2_equivalence;
      t "flat-cost create at 256 guests" `Quick test_flat_cost_create_256;
      t "density transition gate" `Quick test_density_transition_gate;
      t "density determinism" `Quick test_density_deterministic;
      t "deadline admission order" `Quick test_deadline_admission_order;
      t "fifo admission ignores deadline keys" `Quick
        test_fifo_admission_ignores_deadlines ] )

(* The open-loop SLO plane: percentile extraction from log2
   histograms (property-tested against exact percentiles), the
   determinism and observability-neutrality contracts of Slo.run,
   chaos/churn integration, and the Bench_sections wall-accounting
   invariants. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* --- Obs.percentile vs exact nearest-rank percentiles --- *)

let hist_of_values values =
  let reg = Obs.create () in
  let h = Obs.histogram reg "h" in
  List.iter (Obs.observe h) values;
  match (Obs.snapshot reg).Obs.s_hists with
  | [ d ] -> d
  | l -> Alcotest.failf "expected one histogram, got %d" (List.length l)

let exact_percentile values q =
  let a = Array.of_list values in
  Array.sort compare a;
  let n = Array.length a in
  let r = int_of_float (Float.ceil (q *. float_of_int n)) in
  let r = if r < 1 then 1 else if r > n then n else r in
  a.(r - 1)

(* Width of the log2 bucket holding [v] — the precision the estimate
   is allowed to lose. *)
let bucket_width v =
  let i = Obs.bucket_of v in
  if i = 0 then 0.0 else ldexp 1.0 i -. ldexp 1.0 (i - 1)

let prop_percentile_within_bucket =
  QCheck2.Test.make
    ~name:"Obs.percentile within one log2 bucket of the exact percentile"
    ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200) (int_range 1 1_000_000))
        (float_bound_inclusive 1.0))
    (fun (values, q) ->
       let d = hist_of_values values in
       match Obs.percentile d q with
       | None -> false
       | Some est ->
         let exact = exact_percentile values q in
         Float.abs (est -. float_of_int exact) <= bucket_width exact)

let test_percentile_edges () =
  (* Empty: an interned but never-observed histogram snapshots with
     count 0 in an enabled registry; its percentiles are undefined. *)
  let reg = Obs.create () in
  let _h = Obs.histogram reg "empty" in
  (match (Obs.snapshot reg).Obs.s_hists with
   | [ d ] ->
     check Alcotest.int "empty count" 0 d.Obs.h_count;
     checkb "empty percentile" true (Obs.percentile d 0.5 = None)
   | _ -> Alcotest.fail "expected the interned histogram");
  (* Single value: min = max pins the estimate exactly. *)
  let d = hist_of_values [ 100 ] in
  List.iter
    (fun q ->
       check (Alcotest.float 1e-9) "single" 100.0
         (Option.get (Obs.percentile d q)))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (* All-equal: every percentile is that value. *)
  let d = hist_of_values [ 7; 7; 7; 7; 7 ] in
  List.iter
    (fun q ->
       check (Alcotest.float 1e-9) "all-equal" 7.0
         (Option.get (Obs.percentile d q)))
    [ 0.01; 0.5; 0.999 ];
  (* v <= 0 lands in bucket 0; the estimate stays within [min, 0]. *)
  let d = hist_of_values [ -5; 0; -5; -2 ] in
  let est = Option.get (Obs.percentile d 0.5) in
  checkb "nonpositive bucket" true (est >= -5.0 && est <= 0.0);
  (* Degenerate q values clamp to the extremes. *)
  let d = hist_of_values [ 1; 1000 ] in
  checkb "q=0 clamps to rank 1" true (Option.get (Obs.percentile d 0.0) <= 2.0);
  checkb "q=1 reaches max" true (Option.get (Obs.percentile d 1.0) <= 1000.0)

(* --- the SLO engine --- *)

let small_config =
  { Slo.default_config with
    Slo.guests = 2;
    arrivals_per_guest = 12;
    mean_interarrival_us = 3000.0 }

let test_slo_deterministic () =
  let r1 = Slo.run ~config:small_config () in
  let r2 = Slo.run ~config:small_config () in
  checkb "identical reports for a fixed seed" true (r1 = r2);
  let r3 = Slo.run ~config:{ small_config with Slo.seed = 43 } () in
  checkb "a different seed changes the run" true (r1 <> r3)

let test_slo_obs_neutral () =
  let off = Slo.run ~config:small_config () in
  let on = Slo.run ~config:{ small_config with Slo.observe = true } () in
  check Alcotest.int "sim cycles identical with observability on"
    off.Slo.sim_cycles on.Slo.sim_cycles;
  checkb "board metrics populated when observing" true
    on.Slo.metrics.Obs.s_enabled;
  checkb "virq_turnaround cells present" true
    (List.exists
       (fun (c : Obs.cell) -> c.Obs.c_component = "virq_turnaround")
       on.Slo.metrics.Obs.s_cells);
  (* The harness-side measurements exist either way. *)
  List.iter
    (fun v -> checkb "percentiles measured" true (v.Slo.service_p99_us > 0.0))
    off.Slo.vms

let test_slo_serves_everything () =
  let r = Slo.run ~config:small_config () in
  check Alcotest.int "two VM rows" 2 (List.length r.Slo.vms);
  List.iter
    (fun v ->
       check Alcotest.int "all arrivals generated" 12 v.Slo.arrivals;
       check Alcotest.int "all arrivals served" 12 v.Slo.served;
       checkb "ok bounded by served" true (v.Slo.ok <= v.Slo.served);
       checkb "queue depth observed" true (v.Slo.max_depth >= 1))
    r.Slo.vms;
  checkb "victim row first" true
    ((List.hd r.Slo.vms).Slo.role = "victim");
  checkb "PRR utilisation present" true (r.Slo.prrs <> []);
  List.iter
    (fun p ->
       checkb "utilisation in [0,1]" true
         (p.Slo.util >= 0.0 && p.Slo.util <= 1.0))
    r.Slo.prrs;
  check Alcotest.int "no faults injected at rate 0" 0 r.Slo.injected;
  check Alcotest.int "no crashes" 0 r.Slo.crashes

let test_slo_chaos_integration () =
  let cfg = { small_config with Slo.fault_rate = 0.3 } in
  let r = Slo.run ~config:cfg () in
  checkb "faults injected" true (r.Slo.injected > 0);
  check Alcotest.int "no kernel-level crashes" 0 r.Slo.crashes;
  List.iter
    (fun v -> check Alcotest.int "queue drained despite faults" 12 v.Slo.served)
    r.Slo.vms;
  let r2 = Slo.run ~config:cfg () in
  checkb "chaos run deterministic" true (r = r2)

let test_slo_churn () =
  let cfg =
    { small_config with
      Slo.churn_kills = 1;
      arrivals_per_guest = 20;
      mean_interarrival_us = 2000.0 }
  in
  let r = Slo.run ~config:cfg () in
  check Alcotest.int "one churn kill performed" 1 r.Slo.kills;
  List.iter
    (fun v -> check Alcotest.int "queues drained across the kill" 20 v.Slo.served)
    r.Slo.vms;
  (* The victim is never churned; only aggressors lose in-flight work
     to the kill (visible as drops without acquire failures). *)
  checkb "churn run deterministic" true (r = Slo.run ~config:cfg ())

let test_slo_bursty () =
  let cfg = { small_config with Slo.process = Slo.Bursty } in
  let r = Slo.run ~config:cfg () in
  List.iter
    (fun v -> check Alcotest.int "bursty arrivals all served" 12 v.Slo.served)
    r.Slo.vms;
  (* Same seed, different process: the arrival schedule differs. *)
  checkb "bursty differs from poisson" true
    (r.Slo.vms <> (Slo.run ~config:small_config ()).Slo.vms)

(* --- Bench_sections wall accounting --- *)

(* A fake clock: every [tick] call advances time by what the test
   prescribes, so the accounting identities are exact. *)
let fake_clock () =
  let t = ref 0.0 in
  (t, fun () -> !t)

let test_sections_accounting () =
  let t, now = fake_clock () in
  let bs = Bench_sections.create ~now in
  (* table3 runs 5 s of its own work plus a 10 s shared sweep. *)
  Bench_sections.section bs "table3" (fun () ->
      t := !t +. 2.0;
      (let _ = Bench_sections.shared bs "sweep" (fun () -> t := !t +. 10.0; 42) in
       ());
      t := !t +. 3.0);
  (* fig9 renders cached results: no time passes. *)
  Bench_sections.section bs "fig9" (fun () -> ());
  t := !t +. 1.5 (* unattributed tail: JSON writing etc. *);
  let entries = Bench_sections.entries bs in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 1e-9)))
    "entries in execution order with sweep separated"
    [ ("sweep", 10.0); ("table3", 5.0); ("fig9", 0.0) ]
    entries;
  check (Alcotest.float 1e-9) "attributed" 15.0 (Bench_sections.attributed bs);
  check (Alcotest.float 1e-9) "elapsed" 16.5 (Bench_sections.elapsed bs);
  check (Alcotest.float 1e-9) "unattributed" 1.5 (Bench_sections.unattributed bs);
  (* The invariant the perf artifact relies on. *)
  check (Alcotest.float 1e-9) "sections + unattributed = elapsed"
    (Bench_sections.elapsed bs)
    (Bench_sections.attributed bs +. Bench_sections.unattributed bs)

let test_sections_own_never_negative () =
  (* A clock hiccup makes the shared work appear longer than the
     enclosing section; the own wall floors at zero instead of going
     negative (and unattributed still floors at zero). *)
  let t, now = fake_clock () in
  let bs = Bench_sections.create ~now in
  Bench_sections.section bs "outer" (fun () ->
      let _ =
        Bench_sections.shared bs "sweep" (fun () -> t := !t +. 10.0; ())
      in
      t := !t -. 4.0 (* clock stepped backwards *));
  List.iter
    (fun (_, w) -> checkb "own wall non-negative" true (w >= 0.0))
    (Bench_sections.entries bs);
  checkb "unattributed non-negative" true (Bench_sections.unattributed bs >= 0.0)

let test_sections_duplicate_keys () =
  (* The same key can be recorded twice (micro re-run for --json);
     entries keep both so consumers can sum them. *)
  let t, now = fake_clock () in
  let bs = Bench_sections.create ~now in
  Bench_sections.section bs "micro" (fun () -> t := !t +. 1.0);
  Bench_sections.section bs "micro" (fun () -> t := !t +. 2.0);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 1e-9)))
    "duplicates preserved" [ ("micro", 1.0); ("micro", 2.0) ]
    (Bench_sections.entries bs);
  check (Alcotest.float 1e-9) "attributed sums duplicates" 3.0
    (Bench_sections.attributed bs)

let suite =
  ( "slo",
    [ QCheck_alcotest.to_alcotest prop_percentile_within_bucket;
      Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges;
      Alcotest.test_case "slo deterministic" `Quick test_slo_deterministic;
      Alcotest.test_case "slo observability-neutral" `Quick
        test_slo_obs_neutral;
      Alcotest.test_case "slo serves everything" `Quick
        test_slo_serves_everything;
      Alcotest.test_case "slo chaos integration" `Slow
        test_slo_chaos_integration;
      Alcotest.test_case "slo churn" `Slow test_slo_churn;
      Alcotest.test_case "slo bursty arrivals" `Quick test_slo_bursty;
      Alcotest.test_case "bench sections accounting" `Quick
        test_sections_accounting;
      Alcotest.test_case "bench sections own never negative" `Quick
        test_sections_own_never_negative;
      Alcotest.test_case "bench sections duplicate keys" `Quick
        test_sections_duplicate_keys ] )

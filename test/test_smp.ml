(* The SMP complex (lib/core/smp.ml): quantum-barrier determinism,
   host-domain independence, pcpus-1 delegation identity, idle-balance
   migration, IPI/shootdown conservation, and the kill/migration race
   property under ASID pressure — the per-CPU invariant plane armed
   throughout. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string

let clean smp boundary =
  Alcotest.(check (list string))
    (Printf.sprintf "invariants clean at %s" boundary)
    []
    (List.map Invariant.violation_to_string
       (Invariant.check_smp smp ~boundary))

(* Cross-node IPC storm guest: send a tagged payload to the next peer
   in the ring, try one receive, pause; exit after [iters] rounds.
   Peer ids land in [ids] after every VM exists — guests only start
   running inside [Smp.run], and the array is immutable from then on,
   so reading it from whichever domain simulates the node is safe. *)
let storm ~ids ~me ~iters _genv =
  for i = 1 to iters do
    let peers = Array.length !ids in
    if peers > 1 then begin
      let dest = !ids.((me + 1) mod peers) in
      ignore
        (Hyper.hypercall (Hyper.Vm_send { dest; payload = [| me; i |] }));
      ignore (Hyper.hypercall Hyper.Vm_recv)
    end;
    ignore (Hyper.pause ())
  done

(* Sleeper guest: blocks in [Vm_idle] forever — it stays alive (and
   keeps its ASID tag) until something kills it, waking only when a
   vIRQ (e.g. a cross-CPU message doorbell) is delivered. *)
let sleeper _genv =
  while true do
    ignore (Hyper.idle ())
  done

let build_storm ?workers ?(linger = false) ~pcpus ~guests ~iters () =
  let smp =
    Smp.create ?workers ~pcpus ~mk_zynq:(fun cpu -> Zynq.create ~cpu ()) ()
  in
  let ids = ref [||] in
  let main ~me genv =
    storm ~ids ~me ~iters:(iters + (3 * me)) genv;
    if linger then sleeper genv
  in
  let pds =
    Array.init guests (fun g ->
        Smp.create_vm smp ~name:(Printf.sprintf "g%d" g) (main ~me:g))
  in
  ids := Array.map (fun (pd : Pd.t) -> pd.Pd.id) pds;
  smp

let fingerprint smp =
  let s = Smp.stats smp in
  let clocks =
    String.concat ","
      (List.init (Smp.pcpus smp) (fun c ->
           string_of_int (Clock.now (Smp.zynq smp c).Zynq.clock)))
  in
  Printf.sprintf
    "now=%d hc=%d crash=%d alive=%d dir=%s clocks=%s ipi=%d/%d/%d \
     shoot=%d/%d mig=%d coh=%d/%d cont=%d"
    (Smp.now smp) (Smp.hypercalls smp) (Smp.crashes smp)
    (Smp.alive_guests smp)
    (String.concat ","
       (List.map
          (fun (id, cpu) -> Printf.sprintf "%d:%d" id cpu)
          (Smp.directory smp)))
    clocks s.Smp.s_ipis_posted s.Smp.s_ipis_delivered s.Smp.s_ipis_dropped
    s.Smp.s_shootdowns_posted s.Smp.s_shootdowns_completed
    s.Smp.s_migrations s.Smp.s_coherence_lines s.Smp.s_coherence_cycles
    s.Smp.s_contention_cycles

(* ------------------------------------------------------------------ *)
(* Determinism: the same pcpus=3 storm is bit-identical run to run,    *)
(* and for ANY host worker count — the quantum-barrier promise.        *)

let storm_fp ?workers () =
  let smp = build_storm ?workers ~pcpus:3 ~guests:6 ~iters:25 () in
  Invariant.attach_smp smp;
  Smp.run smp ~until:(Cycles.of_ms 300.0);
  clean smp "final";
  fingerprint smp

let test_determinism () =
  let a = storm_fp ~workers:1 () in
  let b = storm_fp ~workers:1 () in
  check cs "identical run to run" a b

let test_domain_count_independence () =
  let serial = storm_fp ~workers:1 () in
  let par3 = storm_fp ~workers:3 () in
  let par8 = storm_fp ~workers:8 () in
  check cs "1 worker == 3 workers" serial par3;
  check cs "1 worker == 8 workers" serial par8

(* ------------------------------------------------------------------ *)
(* pcpus = 1 is pure delegation: bit-identical to driving the kernel   *)
(* directly, including the id space.                                   *)

let delegation_world create_vm =
  let ids = ref [||] in
  let pds =
    Array.init 4 (fun g ->
        create_vm (Printf.sprintf "g%d" g) (storm ~ids ~me:g ~iters:20))
  in
  ids := Array.map (fun (pd : Pd.t) -> pd.Pd.id) pds

let test_pcpus1_delegates_to_kernel () =
  let z = Zynq.create ~cpu:0 () in
  let kern = Kernel.boot z in
  delegation_world (fun name main -> Kernel.create_vm kern ~name main);
  Kernel.run kern ~until:(Cycles.of_ms 200.0);
  let smp =
    Smp.create ~pcpus:1 ~mk_zynq:(fun cpu -> Zynq.create ~cpu ()) ()
  in
  delegation_world (fun name main -> Smp.create_vm smp ~name main);
  Smp.run smp ~until:(Cycles.of_ms 200.0);
  check ci "identical final clocks" (Clock.now z.Zynq.clock) (Smp.now smp);
  check ci "identical hypercall counts" (Kernel.hypercalls kern)
    (Smp.hypercalls smp);
  check ci "identical crash counts" (Kernel.crashes kern) (Smp.crashes smp);
  check ci "identical survivors" (Kernel.alive_guests kern)
    (Smp.alive_guests smp);
  let s = Smp.stats smp in
  check ci "no IPIs at pcpus 1" 0 s.Smp.s_ipis_posted;
  check ci "no coherence traffic at pcpus 1" 0 s.Smp.s_coherence_cycles

(* ------------------------------------------------------------------ *)
(* IPI conservation across a full storm: posted = delivered + dropped, *)
(* outboxes empty at the end, invariants clean. Guests linger in       *)
(* [Vm_idle] after their storm so cross-node messages posted in one    *)
(* epoch find live (blocked) receivers at the barrier — delivery must  *)
(* actually happen, not just conservation over universal drops.        *)

let test_ipi_conservation () =
  let smp = build_storm ~linger:true ~pcpus:2 ~guests:4 ~iters:15 () in
  Invariant.attach_smp smp;
  Smp.run smp ~until:(Cycles.of_ms 300.0);
  let s = Smp.stats smp in
  check cb "cross-CPU IPIs flowed" true (s.Smp.s_ipis_posted > 0);
  check cb "some were delivered" true (s.Smp.s_ipis_delivered > 0);
  check ci "posted = delivered + dropped" s.Smp.s_ipis_posted
    (s.Smp.s_ipis_delivered + s.Smp.s_ipis_dropped);
  check cb "outboxes drained" true (Smp.outboxes_empty smp);
  clean smp "final"

(* ------------------------------------------------------------------ *)
(* Idle-balance migration: with a tiny epoch, pCPU 0's long queue of   *)
(* never-started guests is visible at a barrier while pCPU 1 idles,    *)
(* and the balancer steals across — the directory follows.             *)

let test_idle_balance_migration () =
  let smp =
    Smp.create ~pcpus:2 ~epoch:(Cycles.of_us 1.0)
      ~mk_zynq:(fun cpu -> Zynq.create ~cpu ()) ()
  in
  Invariant.attach_smp smp;
  let pds =
    Array.init 6 (fun g ->
        Smp.create_vm smp ~name:(Printf.sprintf "m%d" g) ~cpu:0 sleeper)
  in
  Smp.run_for smp (Cycles.of_ms 0.5);
  let s = Smp.stats smp in
  check cb "idle balance stole work" true (s.Smp.s_migrations >= 2);
  check ci "everyone still alive" 6 (Smp.alive_guests smp);
  let on_cpu1 =
    Array.fold_left
      (fun acc (pd : Pd.t) ->
         acc + (if Smp.vm_cpu smp pd.Pd.id = Some 1 then 1 else 0))
      0 pds
  in
  check cb "directory shows migrants on pCPU 1" true (on_cpu1 >= 1);
  check ci "migration count matches placement" on_cpu1 s.Smp.s_migrations;
  clean smp "final"

(* ------------------------------------------------------------------ *)
(* Kill/migration race property: both nodes packed past the 254 guest  *)
(* ASID tags — 256 pinned sleepers per node all take a tag on first    *)
(* dispatch and then hold it while blocked in [Vm_idle], so the last   *)
(* dispatches must steal tags and post IPI-driven cross-CPU            *)
(* shootdowns. A few "poker" guests keep firing [Vm_send] wake-ups at  *)
(* deterministic pseudo-random victims: a woken victim whose tag was   *)
(* stolen steals again on redispatch, cascading further shootdowns.    *)
(* Between slices a seeded adversary kills a random live VM —          *)
(* frequently one on the remote pCPU with a shootdown it caused still  *)
(* pending. Checkers #1-#8 run per node and the three SMP checkers     *)
(* run at every slice, every kill, and (via attach_smp) every epoch    *)
(* barrier.                                                            *)

let test_kill_race_under_asid_pressure () =
  let pcpus = 2 in
  let smp =
    Smp.create ~pcpus ~mk_zynq:(fun cpu -> Zynq.create ~cpu ()) ()
  in
  Invariant.attach_smp smp;
  let per_node = 256 in
  let total = pcpus * per_node in
  let ids = ref [||] in
  let poker ~me genv =
    for i = 1 to 40 do
      let n = Array.length !ids in
      let dest = !ids.(((me * 31) + (i * 7)) mod n) in
      ignore
        (Hyper.hypercall (Hyper.Vm_send { dest; payload = [| me; i |] }));
      ignore (Hyper.pause ())
    done;
    sleeper genv
  in
  let pds =
    Array.init total (fun g ->
        let main = if g < 2 * pcpus then poker ~me:g else sleeper in
        Smp.create_vm smp
          ~name:(Printf.sprintf "p%d" g)
          ~cpu:(g mod pcpus) main)
  in
  ids := Array.map (fun (pd : Pd.t) -> pd.Pd.id) pds;
  clean smp "populated";
  let rng = Rng.create ~seed:0xC0FFEE in
  let kills = ref 0 in
  for _round = 1 to 24 do
    Smp.run_for smp (Cycles.of_ms 1.0);
    clean smp "slice";
    match Smp.directory smp with
    | [] -> ()
    | dir ->
      let id, _cpu = List.nth dir (Rng.int rng (List.length dir)) in
      if Smp.kill_vm smp id ~reason:"race" then incr kills;
      clean smp "kill"
  done;
  Smp.run_for smp (Cycles.of_ms 5.0);
  clean smp "drained";
  let s = Smp.stats smp in
  check cb "kills actually raced the complex" true (!kills > 0);
  check ci "sleepers survived everything but the kills" (total - !kills)
    (Smp.alive_guests smp);
  check cb "ASID pressure posted shootdowns" true
    (s.Smp.s_shootdowns_posted > 0);
  check ci "every shootdown reached every other pCPU"
    (s.Smp.s_shootdowns_posted * (pcpus - 1))
    s.Smp.s_shootdowns_completed;
  check ci "IPI conservation closed" s.Smp.s_ipis_posted
    (s.Smp.s_ipis_delivered + s.Smp.s_ipis_dropped);
  check cb "outboxes drained" true (Smp.outboxes_empty smp)

let suite =
  ( "smp",
    let t = Alcotest.test_case in
    [ t "quantum-barrier determinism" `Quick test_determinism;
      t "host domain-count independence" `Quick
        test_domain_count_independence;
      t "pcpus-1 delegation identity" `Quick test_pcpus1_delegates_to_kernel;
      t "IPI conservation" `Quick test_ipi_conservation;
      t "idle-balance migration" `Quick test_idle_balance_migration;
      t "kill race under ASID pressure" `Slow
        test_kill_race_under_asid_pressure ] )
